//! Transient-failure load injection.
//!
//! The paper generates transient failures with "a computation-intensive
//! program that can be parameterized to take approximately a required share
//! of CPU", started and stopped to impose regular or Poisson arrivals
//! (§V-A). [`SpikeProfile`] is that program's simulated twin: it draws
//! (off-time, duration, share) triples from configurable distributions and
//! can be parameterized directly by the *fraction of time under failure*
//! used in Figs 4 and 5.

use sps_sim::{SimDuration, SimRng, SimTime};

/// A distribution over non-negative reals, used for spike timing and shares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Always the same value (regular arrivals / fixed durations).
    Fixed(f64),
    /// Exponential with the given mean (Poisson arrivals).
    Exp {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Pareto with minimum `scale` and tail index `shape` (heavy tails).
    Pareto {
        /// Minimum value.
        scale: f64,
        /// Tail index; smaller is heavier.
        shape: f64,
    },
    /// Log-normal parameterized by the underlying normal's `mu`, `sigma`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

impl Dist {
    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Dist::Fixed(v) => v,
            Dist::Exp { mean } => rng.exp(mean),
            Dist::Uniform { lo, hi } => rng.uniform(lo, hi),
            Dist::Pareto { scale, shape } => rng.pareto(scale, shape),
            Dist::LogNormal { mu, sigma } => rng.log_normal(mu, sigma),
        }
    }

    /// The distribution's mean, where finite.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Fixed(v) => v,
            Dist::Exp { mean } => mean,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Pareto { scale, shape } => {
                if shape > 1.0 {
                    scale * shape / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
        }
    }
}

/// One background-load spike in a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeWindow {
    /// When the spike begins.
    pub start: SimTime,
    /// When the spike ends.
    pub end: SimTime,
    /// CPU share the spike consumes, in `[0, 1]`.
    pub share: f64,
}

impl SpikeWindow {
    /// The spike's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// `true` if `t` falls inside the spike (half-open interval).
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// A generator of transient-failure load spikes.
#[derive(Debug, Clone)]
pub struct SpikeProfile {
    /// Off-time between the end of one spike and the start of the next.
    pub off_time: Dist,
    /// Spike duration.
    pub duration: Dist,
    /// CPU share consumed during the spike.
    pub share: Dist,
    /// Delay before the first spike (defaults to one off-time draw).
    pub initial_delay: Option<Dist>,
}

impl SpikeProfile {
    /// A profile that keeps the machine under failure for `fraction` of the
    /// time on average, with exponentially distributed spike durations of
    /// the given mean (Poisson arrivals). This is the §V-B parameterization:
    /// "we vary the fraction of time when transient failures are present".
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1` and `mean_duration` is positive.
    pub fn duty_cycle(fraction: f64, mean_duration: SimDuration) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "failure-time fraction must be in (0, 1), got {fraction}"
        );
        let d = mean_duration.as_secs_f64();
        assert!(d > 0.0, "mean duration must be positive");
        let off_mean = d * (1.0 - fraction) / fraction;
        SpikeProfile {
            off_time: Dist::Exp { mean: off_mean },
            duration: Dist::Exp { mean: d },
            // The paper's spikes push machines to 95–100 % CPU.
            share: Dist::Uniform { lo: 0.95, hi: 1.0 },
            initial_delay: None,
        }
    }

    /// A regular (deterministic-interval) profile: spikes of `duration`
    /// starting every `period`, consuming `share` of the CPU.
    ///
    /// # Panics
    ///
    /// Panics if `duration >= period`.
    pub fn regular(period: SimDuration, duration: SimDuration, share: f64) -> Self {
        assert!(
            duration < period,
            "spike duration {duration} must be shorter than the period {period}"
        );
        SpikeProfile {
            off_time: Dist::Fixed((period - duration).as_secs_f64()),
            duration: Dist::Fixed(duration.as_secs_f64()),
            share: Dist::Fixed(share),
            initial_delay: None,
        }
    }

    /// The long-run fraction of time under failure implied by the profile
    /// means.
    pub fn expected_fraction(&self) -> f64 {
        let on = self.duration.mean();
        let off = self.off_time.mean();
        on / (on + off)
    }

    /// Generates the spike schedule for `[0, horizon)`.
    ///
    /// Spikes never overlap; a spike crossing the horizon is truncated.
    pub fn generate(&self, rng: &mut SimRng, horizon: SimTime) -> Vec<SpikeWindow> {
        let mut windows = Vec::new();
        let first_gap = self
            .initial_delay
            .as_ref()
            .unwrap_or(&self.off_time)
            .sample(rng);
        let mut cursor = SimTime::ZERO + SimDuration::from_secs_f64(first_gap.max(0.0));
        while cursor < horizon {
            let dur = SimDuration::from_secs_f64(self.duration.sample(rng).max(0.0));
            if dur.is_zero() {
                // Avoid degenerate zero-length spikes stalling the loop.
                cursor += SimDuration::from_millis(1);
                continue;
            }
            let end = (cursor + dur).min(horizon);
            windows.push(SpikeWindow {
                start: cursor,
                end,
                share: self.share.sample(rng).clamp(0.0, 1.0),
            });
            let off = SimDuration::from_secs_f64(self.off_time.sample(rng).max(0.0));
            cursor = end + off.max(SimDuration::from_nanos(1));
        }
        windows
    }
}

/// Total time under failure across a schedule.
pub fn total_failure_time(windows: &[SpikeWindow]) -> SimDuration {
    windows
        .iter()
        .fold(SimDuration::ZERO, |acc, w| acc + w.duration())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(1234)
    }

    #[test]
    fn dist_means_are_consistent_with_samples() {
        let mut r = rng();
        for dist in [
            Dist::Fixed(3.0),
            Dist::Exp { mean: 3.0 },
            Dist::Uniform { lo: 2.0, hi: 4.0 },
            Dist::Pareto {
                scale: 1.0,
                shape: 4.0,
            },
        ] {
            let n = 30_000;
            let emp: f64 = (0..n).map(|_| dist.sample(&mut r)).sum::<f64>() / n as f64;
            let want = dist.mean();
            assert!(
                (emp - want).abs() / want < 0.1,
                "{dist:?}: empirical {emp} vs analytic {want}"
            );
        }
    }

    #[test]
    fn pareto_below_unit_shape_has_infinite_mean() {
        assert!(Dist::Pareto {
            scale: 1.0,
            shape: 0.9
        }
        .mean()
        .is_infinite());
    }

    #[test]
    fn regular_profile_is_periodic() {
        let profile =
            SpikeProfile::regular(SimDuration::from_secs(60), SimDuration::from_secs(10), 0.97);
        let windows = profile.generate(&mut rng(), SimTime::from_secs(600));
        assert_eq!(windows.len(), 10);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.start, SimTime::from_secs(50 + 60 * i as u64));
            assert_eq!(w.duration(), SimDuration::from_secs(10));
            assert!((w.share - 0.97).abs() < 1e-12);
        }
    }

    #[test]
    fn duty_cycle_hits_target_fraction() {
        let profile = SpikeProfile::duty_cycle(0.3, SimDuration::from_secs(5));
        assert!((profile.expected_fraction() - 0.3).abs() < 1e-12);
        let horizon = SimTime::from_secs(20_000);
        let windows = profile.generate(&mut rng(), horizon);
        let on = total_failure_time(&windows).as_secs_f64();
        let frac = on / horizon.as_secs_f64();
        assert!((frac - 0.3).abs() < 0.03, "observed fraction {frac}");
    }

    #[test]
    fn windows_never_overlap_and_stay_in_horizon() {
        let profile = SpikeProfile::duty_cycle(0.5, SimDuration::from_secs(2));
        let horizon = SimTime::from_secs(1_000);
        let windows = profile.generate(&mut rng(), horizon);
        assert!(!windows.is_empty());
        for pair in windows.windows(2) {
            assert!(pair[0].end <= pair[1].start, "windows overlap");
        }
        for w in &windows {
            assert!(w.end <= horizon);
            assert!(w.start < w.end);
            assert!((0.0..=1.0).contains(&w.share));
        }
    }

    #[test]
    fn contains_is_half_open() {
        let w = SpikeWindow {
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
            share: 1.0,
        };
        assert!(w.contains(SimTime::from_secs(1)));
        assert!(!w.contains(SimTime::from_secs(2)));
        assert!(!w.contains(SimTime::ZERO));
    }

    #[test]
    fn initial_delay_overrides_first_gap() {
        let mut profile =
            SpikeProfile::regular(SimDuration::from_secs(10), SimDuration::from_secs(1), 1.0);
        profile.initial_delay = Some(Dist::Fixed(2.0));
        let windows = profile.generate(&mut rng(), SimTime::from_secs(30));
        assert_eq!(windows[0].start, SimTime::from_secs(2));
    }
}
