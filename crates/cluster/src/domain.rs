//! Fault domains: the rack/switch topology machines live in.
//!
//! Su & Zhou (arXiv:1508.04907) argue that massively parallel SPEs must
//! tolerate *correlated* failures — a power rail takes out a whole rack, a
//! top-of-rack switch isolates every machine behind it. A
//! [`FaultTopology`] records which rack each machine sits in and which
//! switch each rack hangs off, so that
//!
//! * chaos plans can scope an action to a domain ("fail rack r2",
//!   "partition switch s1") and the harness expands it to the member
//!   machines, and
//! * placement can keep a subjob's primary/standby pair *domain-disjoint*,
//!   guaranteeing one domain-scoped fault never removes both replicas.
//!
//! The default topology is *flat*: every machine is its own rack behind
//! its own switch. That is the degenerate "no correlated domains" case and
//! it is deliberately indistinguishable from the pre-domain cluster — a
//! run that never installs a topology and never injects a domain fault
//! behaves (and renders) byte-identically to one built before domains
//! existed.

use std::fmt;

use crate::machine::MachineId;

/// Identifier of one rack-level fault domain. Displayed as `r{n}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of one top-of-rack switch. Displayed as `s{n}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The rack/switch topology of a cluster: machine → rack → switch.
///
/// ```
/// use sps_cluster::{DomainId, FaultTopology, MachineId, SwitchId};
///
/// // 8 machines, 2 per rack, 2 racks per switch.
/// let t = FaultTopology::grid(8, 2, 2);
/// assert_eq!(t.rack_of(MachineId(5)), DomainId(2));
/// assert_eq!(t.switch_of(MachineId(5)), SwitchId(1));
/// assert!(t.domain_disjoint(MachineId(0), MachineId(4)));
/// assert!(!t.domain_disjoint(MachineId(0), MachineId(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTopology {
    /// Per-machine rack assignment (indexed by machine id).
    rack_of: Vec<DomainId>,
    /// Per-rack switch assignment (indexed by rack id).
    switch_of: Vec<SwitchId>,
}

impl FaultTopology {
    /// The flat (degenerate) topology: each of `machines` machines is its
    /// own rack behind its own switch. No two machines share any domain.
    pub fn flat(machines: usize) -> Self {
        FaultTopology {
            rack_of: (0..machines as u32).map(DomainId).collect(),
            switch_of: (0..machines as u32).map(SwitchId).collect(),
        }
    }

    /// A regular grid: machine `m` sits in rack `m / machines_per_rack`,
    /// and rack `r` hangs off switch `r / racks_per_switch`.
    ///
    /// # Panics
    ///
    /// Panics when either grouping factor is zero.
    pub fn grid(machines: usize, machines_per_rack: usize, racks_per_switch: usize) -> Self {
        assert!(machines_per_rack > 0, "machines_per_rack must be positive");
        assert!(racks_per_switch > 0, "racks_per_switch must be positive");
        let racks = machines.div_ceil(machines_per_rack);
        FaultTopology {
            rack_of: (0..machines)
                .map(|m| DomainId((m / machines_per_rack) as u32))
                .collect(),
            switch_of: (0..racks)
                .map(|r| SwitchId((r / racks_per_switch) as u32))
                .collect(),
        }
    }

    /// Number of machines the topology covers.
    pub fn machines(&self) -> usize {
        self.rack_of.len()
    }

    /// Number of racks.
    pub fn rack_count(&self) -> usize {
        self.switch_of.len()
    }

    /// Number of distinct switches.
    pub fn switch_count(&self) -> usize {
        self.switch_of
            .iter()
            .map(|s| s.0)
            .max()
            .map_or(0, |max| max as usize + 1)
    }

    /// The rack `m` sits in.
    ///
    /// # Panics
    ///
    /// Panics when `m` is outside the topology.
    pub fn rack_of(&self, m: MachineId) -> DomainId {
        self.rack_of[m.0 as usize]
    }

    /// The switch rack `r` hangs off.
    ///
    /// # Panics
    ///
    /// Panics when `r` is outside the topology.
    pub fn switch_of_rack(&self, r: DomainId) -> SwitchId {
        self.switch_of[r.0 as usize]
    }

    /// The switch `m` is behind.
    ///
    /// # Panics
    ///
    /// Panics when `m` is outside the topology.
    pub fn switch_of(&self, m: MachineId) -> SwitchId {
        self.switch_of_rack(self.rack_of(m))
    }

    /// Machines in rack `r`, in id order.
    pub fn machines_in_rack(&self, r: DomainId) -> impl Iterator<Item = MachineId> + '_ {
        self.rack_of
            .iter()
            .enumerate()
            .filter(move |(_, &rack)| rack == r)
            .map(|(m, _)| MachineId(m as u32))
    }

    /// Machines behind switch `s`, in id order.
    pub fn machines_behind_switch(&self, s: SwitchId) -> impl Iterator<Item = MachineId> + '_ {
        self.rack_of
            .iter()
            .enumerate()
            .filter(move |(_, &rack)| self.switch_of[rack.0 as usize] == s)
            .map(|(m, _)| MachineId(m as u32))
    }

    /// `true` when `a` and `b` share neither rack nor switch — the
    /// placement invariant for a primary/standby pair: no single
    /// domain-scoped fault (rack power loss or switch partition) can take
    /// out both replicas.
    pub fn domain_disjoint(&self, a: MachineId, b: MachineId) -> bool {
        self.rack_of(a) != self.rack_of(b) && self.switch_of(a) != self.switch_of(b)
    }

    /// Extends the topology with one machine in its own new rack behind
    /// its own new switch (the flat default for machines added after the
    /// topology was installed).
    pub fn push_flat_machine(&mut self) {
        let rack = DomainId(self.switch_of.len() as u32);
        let switch = SwitchId(self.switch_count() as u32);
        self.rack_of.push(rack);
        self.switch_of.push(switch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_has_no_shared_domains() {
        let t = FaultTopology::flat(5);
        assert_eq!(t.machines(), 5);
        assert_eq!(t.rack_count(), 5);
        assert_eq!(t.switch_count(), 5);
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    assert!(t.domain_disjoint(MachineId(a), MachineId(b)));
                }
            }
        }
    }

    #[test]
    fn grid_groups_machines_and_racks() {
        let t = FaultTopology::grid(12, 3, 2);
        assert_eq!(t.machines(), 12);
        assert_eq!(t.rack_count(), 4);
        assert_eq!(t.switch_count(), 2);
        assert_eq!(t.rack_of(MachineId(0)), DomainId(0));
        assert_eq!(t.rack_of(MachineId(11)), DomainId(3));
        assert_eq!(t.switch_of(MachineId(0)), SwitchId(0));
        assert_eq!(t.switch_of(MachineId(11)), SwitchId(1));
        assert_eq!(
            t.machines_in_rack(DomainId(1)).collect::<Vec<_>>(),
            vec![MachineId(3), MachineId(4), MachineId(5)]
        );
        assert_eq!(t.machines_behind_switch(SwitchId(1)).count(), 6);
    }

    #[test]
    fn disjointness_requires_both_rack_and_switch() {
        let t = FaultTopology::grid(8, 2, 2);
        // Same rack: not disjoint.
        assert!(!t.domain_disjoint(MachineId(0), MachineId(1)));
        // Different rack, same switch: still not disjoint.
        assert!(!t.domain_disjoint(MachineId(0), MachineId(2)));
        // Different rack and switch: disjoint.
        assert!(t.domain_disjoint(MachineId(0), MachineId(4)));
    }

    #[test]
    fn ragged_grid_last_rack_is_short() {
        let t = FaultTopology::grid(7, 3, 2);
        assert_eq!(t.rack_count(), 3);
        assert_eq!(t.machines_in_rack(DomainId(2)).count(), 1);
    }

    #[test]
    fn push_flat_machine_extends_without_sharing() {
        let mut t = FaultTopology::grid(4, 2, 1);
        let before = t.machines();
        t.push_flat_machine();
        assert_eq!(t.machines(), before + 1);
        let m = MachineId(before as u32);
        for other in 0..before as u32 {
            assert!(t.domain_disjoint(m, MachineId(other)));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(DomainId(3).to_string(), "r3");
        assert_eq!(SwitchId(1).to_string(), "s1");
    }
}
