//! The LAN model: per-message propagation latency plus per-link FIFO
//! serialization at a configurable bandwidth, with optional chaos faults.
//!
//! Like [`Machine`](crate::Machine), the network is passive: the sender asks
//! for a delivery verdict and schedules its own delivery event(s). Each
//! ordered machine pair is an independent link whose serializer is busy
//! until the previous message has been pushed out, so bursts queue rather
//! than teleport. Loopback messages (same machine) pay only a small local
//! cost.
//!
//! # Storage: dense per-machine, sparse per-link
//!
//! A cluster of `n` machines has `n²` ordered links, but at any instant
//! only the links that recently carried traffic or have chaos installed
//! matter. Per-*machine* state (partition/fault degrees used to gate the
//! lookups below) lives in dense `O(n)` vectors grown by amortized
//! doubling. Per-*link* state is `O(active links)`:
//!
//! * busy-until times in a hash map keyed by the packed `(src, dst)` pair
//!   (a fixed, deterministic hasher — no per-process seed), with expired
//!   entries reclaimed in bulk once the map crosses a size threshold
//!   (an entry whose serializer freed at or before `now` is
//!   indistinguishable from an absent one, so reclamation never changes
//!   a verdict; the DES clock is monotone, which makes the sweep safe);
//! * partition flags in a sorted set of packed unordered pairs;
//! * chaos profiles in a sorted map of packed ordered pairs;
//! * Gilbert–Elliott "bad state" bits as a sorted set of the links
//!   currently bad (absent ⇔ good, exactly like the dense `false`).
//!
//! At 5,000 machines the previous dense `stride × stride` matrices held
//! ~67M entries *per matrix* (see [`Network::dense_equivalent_bytes`]);
//! the sparse layout holds one entry per active link and is byte-for-byte
//! indistinguishable in behavior — delivery times, RNG draw order, and
//! counters are all unchanged.
//!
//! # Fault injection
//!
//! A [`FaultProfile`] installed on a directed link (or as the network-wide
//! default) adds probabilistic loss, Gilbert–Elliott loss bursts, delivery
//! jitter (reordering), duplication, and delay inflation. All draws come
//! from a dedicated chaos RNG stream and happen **only** for sends covered
//! by a profile, so runs without chaos consume no randomness and stay
//! bit-identical to pre-chaos builds.
//!
//! # Counter semantics
//!
//! * [`Network::messages_sent`] / [`Network::bytes_sent`] count all traffic
//!   **offered** to the network, delivered or not.
//! * [`Network::messages_dropped`] / [`Network::bytes_dropped`] count the
//!   offered traffic that was **lost** (partition or chaos);
//!   [`Network::chaos_dropped`] is the chaos-only portion.
//! * Delivered traffic is therefore `sent - dropped`
//!   ([`Network::messages_delivered`] / [`Network::bytes_delivered`]).
//! * A duplicated message counts once in `messages_sent` and once in
//!   [`Network::messages_duplicated`]; the extra copy is bookkept by the
//!   receiver, not here.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use sps_sim::{SimDuration, SimRng, SimTime};

use crate::chaos::FaultProfile;
use crate::machine::MachineId;

/// Configuration for [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// One-way propagation latency between distinct machines.
    pub latency: SimDuration,
    /// Link bandwidth in bytes per second (1 Gbps LAN by default).
    pub bandwidth_bytes_per_sec: f64,
    /// Delivery cost for loopback (same-machine) messages.
    pub loopback_latency: SimDuration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            // A switched 1 Gbps LAN, as in the paper's testbed.
            latency: SimDuration::from_micros(150),
            bandwidth_bytes_per_sec: 125_000_000.0, // 1 Gbps
            loopback_latency: SimDuration::from_micros(2),
        }
    }
}

/// The delivery verdict for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message arrives at the given instant.
    At(SimTime),
    /// The message arrives twice (chaos duplication).
    Duplicated {
        /// The original arrival.
        first: SimTime,
        /// The duplicate's arrival.
        second: SimTime,
    },
    /// The message is lost (network partition or chaos loss).
    Dropped,
}

impl Delivery {
    /// The (first) arrival instant, or `None` if the message was dropped.
    pub fn time(self) -> Option<SimTime> {
        match self {
            Delivery::At(t) => Some(t),
            Delivery::Duplicated { first, .. } => Some(first),
            Delivery::Dropped => None,
        }
    }

    /// The duplicate's arrival instant, if the message was duplicated.
    pub fn duplicate_time(self) -> Option<SimTime> {
        match self {
            Delivery::Duplicated { second, .. } => Some(second),
            _ => None,
        }
    }
}

/// Packs the directed link `src -> dst` into one map key.
#[inline]
fn link_key(src: MachineId, dst: MachineId) -> u64 {
    ((src.0 as u64) << 32) | dst.0 as u64
}

/// Packs the unordered pair `{a, b}` into one map key, normalized to
/// `(min, max)` so both directions agree.
#[inline]
fn pair_key(a: MachineId, b: MachineId) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    link_key(lo, hi)
}

/// A fixed multiplicative hasher for packed link keys: deterministic
/// across processes and platforms (unlike `RandomState`), so any
/// incidental dependence on map internals can never vary run to run.
#[derive(Debug, Default, Clone, Copy)]
pub struct LinkKeyHasher(u64);

impl Hasher for LinkKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback; the link maps only ever hash u64 keys.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        // splitmix64 finalizer: full-avalanche, cheap, deterministic.
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type LinkMap<V> = HashMap<u64, V, BuildHasherDefault<LinkKeyHasher>>;

/// Sweep the busy map no earlier than this size: small runs never pay
/// for reclamation, big runs amortize it against map growth.
const BUSY_RECLAIM_MIN: usize = 1024;

/// A full-duplex switched network between machines.
///
/// ```
/// use sps_cluster::{Delivery, MachineId, Network, NetworkConfig};
/// use sps_sim::SimTime;
///
/// let mut net = Network::new(NetworkConfig::default());
/// let when = net.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000);
/// assert!(matches!(when, Delivery::At(t) if t > SimTime::ZERO));
/// ```
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    /// Per ordered (src, dst) pair with an in-flight or recent message:
    /// when the link serializer frees up. An absent entry means the link
    /// is idle (equivalently: freed at `SimTime::ZERO`).
    link_busy: LinkMap<SimTime>,
    /// Sweep `link_busy` for expired entries once it reaches this size;
    /// doubles with the surviving population so reclamation stays O(1)
    /// amortized per send.
    busy_reclaim_at: usize,
    /// Unordered pairs (packed `(min, max)` keys) currently partitioned.
    partitioned: BTreeSet<u64>,
    /// Ordered pairs (packed keys) with an installed chaos fault profile.
    faults: BTreeMap<u64, FaultProfile>,
    /// Ordered pairs currently in the Gilbert–Elliott bad state. Absent
    /// means good, so links never touched by a burst draw cost nothing.
    burst_bad: BTreeSet<u64>,
    /// Dense per-machine layer: how many active partitions touch each
    /// machine. Lets the send path skip the pair lookup unless *both*
    /// endpoints are involved in some partition.
    partition_degree: Vec<u32>,
    /// Dense per-machine layer: how many per-link profiles have this
    /// machine as the source. Skips the profile lookup for machines that
    /// only the default profile (if any) covers.
    fault_out_degree: Vec<u32>,
    /// Profile applied to links without a per-link profile.
    default_faults: Option<FaultProfile>,
    /// Dedicated RNG stream for chaos draws; consumed only for sends that
    /// an active profile covers.
    chaos_rng: SimRng,
    messages_sent: u64,
    messages_dropped: u64,
    chaos_dropped: u64,
    messages_duplicated: u64,
    bytes_sent: u64,
    bytes_dropped: u64,
}

impl Network {
    /// Creates a network with the given configuration.
    pub fn new(config: NetworkConfig) -> Self {
        assert!(
            config.bandwidth_bytes_per_sec > 0.0 && config.bandwidth_bytes_per_sec.is_finite(),
            "bandwidth must be positive"
        );
        Network {
            config,
            link_busy: LinkMap::default(),
            busy_reclaim_at: BUSY_RECLAIM_MIN,
            partitioned: BTreeSet::new(),
            faults: BTreeMap::new(),
            burst_bad: BTreeSet::new(),
            partition_degree: Vec::new(),
            fault_out_degree: Vec::new(),
            default_faults: None,
            chaos_rng: SimRng::seed_from(0),
            messages_sent: 0,
            messages_dropped: 0,
            chaos_dropped: 0,
            messages_duplicated: 0,
            bytes_sent: 0,
            bytes_dropped: 0,
        }
    }

    /// Sends `bytes` from `src` to `dst` at `now`; returns the delivery
    /// verdict. The caller schedules the actual delivery event(s) — both of
    /// them for [`Delivery::Duplicated`].
    pub fn send(&mut self, now: SimTime, src: MachineId, dst: MachineId, bytes: u64) -> Delivery {
        // Offered-traffic counters always move together (see module docs).
        self.messages_sent += 1;
        self.bytes_sent += bytes;
        self.reclaim_expired(now);
        if !self.partitioned.is_empty()
            && self.degree(&self.partition_degree, src) > 0
            && self.degree(&self.partition_degree, dst) > 0
            && self.partitioned.contains(&pair_key(src, dst))
        {
            self.messages_dropped += 1;
            self.bytes_dropped += bytes;
            return Delivery::Dropped;
        }
        // Loopback never traverses a faulty link, and most runs install no
        // profiles at all — skip the per-send lookup in both cases.
        let profile = if src == dst || (self.faults.is_empty() && self.default_faults.is_none()) {
            None
        } else {
            let per_link = if self.degree(&self.fault_out_degree, src) > 0 {
                self.faults.get(&link_key(src, dst)).copied()
            } else {
                None
            };
            per_link.or(self.default_faults)
        };
        if let Some(p) = profile {
            if self.chaos_loses(src, dst, &p) {
                self.messages_dropped += 1;
                self.chaos_dropped += 1;
                self.bytes_dropped += bytes;
                return Delivery::Dropped;
            }
        }
        if src == dst {
            return Delivery::At(now + self.config.loopback_latency);
        }
        let delay_factor = profile.map_or(1.0, |p| p.delay_factor);
        let ser = SimDuration::from_secs_f64(
            bytes as f64 / self.config.bandwidth_bytes_per_sec * delay_factor,
        );
        let latency = SimDuration::from_secs_f64(self.config.latency.as_secs_f64() * delay_factor);
        let key = link_key(src, dst);
        let busy = self.link_busy.get(&key).copied().unwrap_or(SimTime::ZERO);
        let start = if busy > now { busy } else { now };
        let done_serializing = start + ser;
        self.link_busy.insert(key, done_serializing);
        let mut arrival = done_serializing + latency;
        if let Some(p) = profile {
            if p.jitter > SimDuration::ZERO {
                arrival +=
                    SimDuration::from_secs_f64(self.chaos_rng.uniform(0.0, p.jitter.as_secs_f64()));
            }
            if p.duplicate_prob > 0.0 && self.chaos_rng.chance(p.duplicate_prob) {
                self.messages_duplicated += 1;
                // The duplicate trails the original by one propagation delay.
                return Delivery::Duplicated {
                    first: arrival,
                    second: arrival + latency,
                };
            }
        }
        Delivery::At(arrival)
    }

    /// Reads a dense per-machine degree without growing the vector:
    /// machines beyond the written range have degree zero.
    #[inline]
    fn degree(&self, v: &[u32], m: MachineId) -> u32 {
        v.get(m.0 as usize).copied().unwrap_or(0)
    }

    /// Drops busy-until entries whose serializer freed at or before `now`
    /// once the map is large enough to be worth sweeping. Such entries are
    /// semantically identical to absent ones (`start = max(busy, now)`), so
    /// this never changes a delivery verdict; the DES clock never moves
    /// backwards, so no later send can observe the reclaimed state.
    fn reclaim_expired(&mut self, now: SimTime) {
        if self.link_busy.len() < self.busy_reclaim_at {
            return;
        }
        self.link_busy.retain(|_, &mut free_at| free_at > now);
        self.busy_reclaim_at = (self.link_busy.len() * 2).max(BUSY_RECLAIM_MIN);
    }

    /// Grows a dense per-machine vector to cover `m`, doubling capacity so
    /// repeated one-id growth is O(1) amortized (no per-id recopy storms).
    fn ensure_machine(v: &mut Vec<u32>, m: MachineId) {
        let need = m.0 as usize + 1;
        if need > v.len() {
            v.resize(need.next_power_of_two(), 0);
        }
    }

    /// Runs the loss draws for one covered send: Gilbert–Elliott chain
    /// first (state re-drawn per message), then independent loss.
    fn chaos_loses(&mut self, src: MachineId, dst: MachineId, p: &FaultProfile) -> bool {
        if let Some(b) = &p.burst {
            let key = link_key(src, dst);
            let bad_now = if self.burst_bad.contains(&key) {
                !self.chaos_rng.chance(b.bad_to_good)
            } else {
                self.chaos_rng.chance(b.good_to_bad)
            };
            if bad_now {
                self.burst_bad.insert(key);
            } else {
                self.burst_bad.remove(&key);
            }
            if bad_now && self.chaos_rng.chance(b.bad_loss_prob) {
                return true;
            }
        }
        p.loss_prob > 0.0 && self.chaos_rng.chance(p.loss_prob)
    }

    /// Reseeds the chaos RNG stream. Call before installing any profiles so
    /// campaigns are reproducible per simulation seed.
    pub fn reseed_chaos(&mut self, seed: u64) {
        self.chaos_rng = SimRng::seed_from(seed);
    }

    /// Installs `profile` on the directed link `src -> dst` only. Install
    /// both directions for a symmetric fault; a single direction with
    /// [`FaultProfile::blackhole`] models a one-way partition.
    pub fn set_link_faults(&mut self, src: MachineId, dst: MachineId, profile: FaultProfile) {
        profile.validate();
        Self::ensure_machine(&mut self.fault_out_degree, src);
        if self.faults.insert(link_key(src, dst), profile).is_none() {
            self.fault_out_degree[src.0 as usize] += 1;
        }
    }

    /// Removes any profile from the directed link `src -> dst` and resets
    /// its burst state.
    pub fn clear_link_faults(&mut self, src: MachineId, dst: MachineId) {
        let key = link_key(src, dst);
        if self.faults.remove(&key).is_some() {
            self.fault_out_degree[src.0 as usize] -= 1;
        }
        self.burst_bad.remove(&key);
    }

    /// Sets (or with `None` clears) the profile applied to every inter-machine
    /// link that has no per-link profile. Clearing resets all burst state on
    /// links without their own profile.
    pub fn set_default_faults(&mut self, profile: Option<FaultProfile>) {
        if let Some(p) = &profile {
            p.validate();
        }
        if profile.is_none() {
            let faults = &self.faults;
            self.burst_bad.retain(|key| faults.contains_key(key));
        }
        self.default_faults = profile;
    }

    /// The profile covering the directed link `src -> dst`, if any.
    pub fn profile_for(&self, src: MachineId, dst: MachineId) -> Option<FaultProfile> {
        self.faults
            .get(&link_key(src, dst))
            .copied()
            .or(self.default_faults)
    }

    /// Removes all per-link and default fault profiles and burst state.
    /// Partitions are untouched (they are topology, not chaos).
    pub fn clear_all_faults(&mut self) {
        self.faults.clear();
        self.fault_out_degree.fill(0);
        self.default_faults = None;
        self.burst_bad.clear();
    }

    /// Cuts (or heals) the link between two machines, in both directions.
    pub fn set_partitioned(&mut self, a: MachineId, b: MachineId, partitioned: bool) {
        Self::ensure_machine(&mut self.partition_degree, a);
        Self::ensure_machine(&mut self.partition_degree, b);
        let key = pair_key(a, b);
        let changed = if partitioned {
            self.partitioned.insert(key)
        } else {
            self.partitioned.remove(&key)
        };
        if changed {
            let delta: i64 = if partitioned { 1 } else { -1 };
            for m in [a.0 as usize, b.0 as usize] {
                self.partition_degree[m] = (self.partition_degree[m] as i64 + delta) as u32;
                if a == b {
                    break; // a self-partition touches one machine once
                }
            }
        }
    }

    /// `true` if messages between `a` and `b` are currently dropped.
    pub fn is_partitioned(&self, a: MachineId, b: MachineId) -> bool {
        self.partitioned.contains(&pair_key(a, b))
    }

    /// Number of links currently tracked by the busy map (sent recently
    /// and not yet reclaimed) — the "active" in O(active links).
    pub fn active_busy_links(&self) -> usize {
        self.link_busy.len()
    }

    /// Lower-bound payload bytes held by the sparse per-link structures
    /// (keys and values only; excludes map/node overhead).
    pub fn sparse_state_bytes(&self) -> u64 {
        let busy = self.link_busy.len() * (size_of::<u64>() + size_of::<SimTime>());
        let parts = self.partitioned.len() * size_of::<u64>();
        let faults = self.faults.len() * (size_of::<u64>() + size_of::<FaultProfile>());
        let bursts = self.burst_bad.len() * size_of::<u64>();
        let degrees = (self.partition_degree.len() + self.fault_out_degree.len()) * 4;
        (busy + parts + faults + bursts + degrees) as u64
    }

    /// Bytes the retired dense representation would spend on a cluster of
    /// `machines` machines: four row-major `stride × stride` matrices
    /// (busy-until, partition flags, fault profiles, burst bits) with the
    /// stride rounded up to a power of two.
    pub fn dense_equivalent_bytes(machines: usize) -> u64 {
        let stride = machines.next_power_of_two() as u64;
        let per_link = size_of::<SimTime>()
            + size_of::<bool>()
            + size_of::<Option<FaultProfile>>()
            + size_of::<bool>();
        stride * stride * per_link as u64
    }

    /// Total messages offered to the network (delivered or not).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages lost to partitions or chaos faults.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Messages lost to chaos faults alone (subset of
    /// [`Network::messages_dropped`]).
    pub fn chaos_dropped(&self) -> u64 {
        self.chaos_dropped
    }

    /// Messages that arrived twice due to chaos duplication.
    pub fn messages_duplicated(&self) -> u64 {
        self.messages_duplicated
    }

    /// Messages actually delivered (`sent - dropped`).
    pub fn messages_delivered(&self) -> u64 {
        self.messages_sent - self.messages_dropped
    }

    /// Total payload bytes offered to the network (delivered or not).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Payload bytes lost to partitions or chaos faults.
    pub fn bytes_dropped(&self) -> u64 {
        self.bytes_dropped
    }

    /// Payload bytes actually delivered (`sent - dropped`).
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_sent - self.bytes_dropped
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::BurstLoss;

    fn net() -> Network {
        Network::new(NetworkConfig {
            latency: SimDuration::from_micros(100),
            bandwidth_bytes_per_sec: 1_000_000.0, // 1 MB/s for easy numbers
            loopback_latency: SimDuration::from_micros(1),
        })
    }

    #[test]
    fn latency_plus_serialization() {
        let mut n = net();
        // 1000 bytes at 1 MB/s = 1 ms serialization + 0.1 ms latency.
        let d = n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000);
        assert_eq!(d, Delivery::At(SimTime::from_micros(1_100)));
    }

    #[test]
    fn bursts_queue_on_the_link() {
        let mut n = net();
        let first = n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000);
        let second = n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000);
        assert_eq!(first, Delivery::At(SimTime::from_micros(1_100)));
        // Second message waits for the first to serialize.
        assert_eq!(second, Delivery::At(SimTime::from_micros(2_100)));
    }

    #[test]
    fn distinct_links_are_independent() {
        let mut n = net();
        n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000_000);
        let other = n.send(SimTime::ZERO, MachineId(0), MachineId(2), 1_000);
        assert_eq!(other, Delivery::At(SimTime::from_micros(1_100)));
    }

    #[test]
    fn reverse_direction_is_independent() {
        let mut n = net();
        n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000_000);
        let reverse = n.send(SimTime::ZERO, MachineId(1), MachineId(0), 1_000);
        assert_eq!(reverse, Delivery::At(SimTime::from_micros(1_100)));
    }

    #[test]
    fn loopback_is_cheap_and_unqueued() {
        let mut n = net();
        let a = n.send(SimTime::ZERO, MachineId(3), MachineId(3), 1_000_000);
        let b = n.send(SimTime::ZERO, MachineId(3), MachineId(3), 1_000_000);
        assert_eq!(a, Delivery::At(SimTime::from_micros(1)));
        assert_eq!(b, Delivery::At(SimTime::from_micros(1)));
    }

    #[test]
    fn partitions_drop_both_directions() {
        let mut n = net();
        n.set_partitioned(MachineId(0), MachineId(1), true);
        assert_eq!(
            n.send(SimTime::ZERO, MachineId(0), MachineId(1), 10),
            Delivery::Dropped
        );
        assert_eq!(
            n.send(SimTime::ZERO, MachineId(1), MachineId(0), 10),
            Delivery::Dropped
        );
        n.set_partitioned(MachineId(1), MachineId(0), false);
        assert!(matches!(
            n.send(SimTime::ZERO, MachineId(0), MachineId(1), 10),
            Delivery::At(_)
        ));
        assert_eq!(n.messages_dropped(), 2);
    }

    #[test]
    fn counters_use_offered_semantics() {
        let mut n = net();
        n.send(SimTime::ZERO, MachineId(0), MachineId(1), 100);
        n.send(SimTime::ZERO, MachineId(0), MachineId(1), 200);
        assert_eq!(n.messages_sent(), 2);
        assert_eq!(n.bytes_sent(), 300);
        // Partitioned traffic still counts as offered, and the loss shows
        // up symmetrically in both dropped counters.
        n.set_partitioned(MachineId(0), MachineId(1), true);
        n.send(SimTime::ZERO, MachineId(0), MachineId(1), 400);
        assert_eq!(n.messages_sent(), 3);
        assert_eq!(n.bytes_sent(), 700);
        assert_eq!(n.messages_dropped(), 1);
        assert_eq!(n.bytes_dropped(), 400);
        assert_eq!(n.messages_delivered(), 2);
        assert_eq!(n.bytes_delivered(), 300);
    }

    #[test]
    fn idle_link_does_not_backdate() {
        let mut n = net();
        n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000);
        // Long after the link drained, delivery is measured from `now`.
        let late = n.send(SimTime::from_secs(1), MachineId(0), MachineId(1), 1_000);
        assert_eq!(
            late,
            Delivery::At(SimTime::from_secs(1) + SimDuration::from_micros(1_100))
        );
    }

    #[test]
    fn partition_round_trip_is_symmetric() {
        // Cut with (a, b), heal with (b, a); cut twice, heal once — the
        // unordered-pair normalization must make all of these agree.
        let mut n = net();
        let (a, b) = (MachineId(4), MachineId(2));
        assert!(!n.is_partitioned(a, b));
        n.set_partitioned(a, b, true);
        n.set_partitioned(a, b, true); // idempotent cut
        assert!(n.is_partitioned(a, b));
        assert!(n.is_partitioned(b, a));
        n.set_partitioned(b, a, false); // heal via the swapped pair
        assert!(!n.is_partitioned(a, b));
        assert!(!n.is_partitioned(b, a));
        assert!(matches!(n.send(SimTime::ZERO, a, b, 10), Delivery::At(_)));
        n.set_partitioned(b, a, false); // idempotent heal
        assert!(!n.is_partitioned(a, b));
    }

    #[test]
    fn fifo_serialization_under_contention() {
        // Back-to-back sends on one ordered link serialize strictly FIFO:
        // each message starts where the previous one finished, regardless
        // of message size ordering.
        let mut n = net();
        let sizes = [5_000u64, 1_000, 3_000, 500];
        let mut expected_done = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        for &bytes in &sizes {
            expected_done += SimDuration::from_micros(bytes); // 1 MB/s
            let d = n.send(SimTime::ZERO, MachineId(0), MachineId(1), bytes);
            let arrival = d.time().unwrap();
            assert_eq!(arrival, expected_done + SimDuration::from_micros(100));
            assert!(arrival > last_arrival, "FIFO order preserved");
            last_arrival = arrival;
        }
        // A later send on the still-busy link queues behind the backlog...
        let mid = n.send(
            SimTime::from_micros(2_000),
            MachineId(0),
            MachineId(1),
            1_000,
        );
        assert_eq!(
            mid.time().unwrap(),
            expected_done + SimDuration::from_micros(1_000 + 100)
        );
        // ...while the reverse direction is idle and unaffected.
        let rev = n.send(
            SimTime::from_micros(2_000),
            MachineId(1),
            MachineId(0),
            1_000,
        );
        assert_eq!(
            rev.time().unwrap(),
            SimTime::from_micros(2_000 + 1_000 + 100)
        );
    }

    #[test]
    fn no_faults_means_no_rng_draws() {
        // Chaos must be pay-for-play: with no profiles installed the RNG is
        // untouched, so pre-chaos runs replay bit-identically.
        let mut a = net();
        let mut b = net();
        b.reseed_chaos(12345);
        for i in 0..50 {
            let da = a.send(SimTime::from_millis(i), MachineId(0), MachineId(1), 100 + i);
            let db = b.send(SimTime::from_millis(i), MachineId(0), MachineId(1), 100 + i);
            assert_eq!(da, db);
        }
        assert_eq!(a.chaos_dropped(), 0);
        assert_eq!(a.messages_duplicated(), 0);
    }

    #[test]
    fn blackhole_link_drops_one_direction_only() {
        let mut n = net();
        n.set_link_faults(MachineId(0), MachineId(1), FaultProfile::blackhole());
        assert_eq!(
            n.send(SimTime::ZERO, MachineId(0), MachineId(1), 10),
            Delivery::Dropped
        );
        assert!(matches!(
            n.send(SimTime::ZERO, MachineId(1), MachineId(0), 10),
            Delivery::At(_)
        ));
        assert_eq!(n.chaos_dropped(), 1);
        assert_eq!(n.messages_dropped(), 1);
        n.clear_link_faults(MachineId(0), MachineId(1));
        assert!(matches!(
            n.send(SimTime::ZERO, MachineId(0), MachineId(1), 10),
            Delivery::At(_)
        ));
    }

    #[test]
    fn default_faults_cover_all_links_until_cleared() {
        let mut n = net();
        n.reseed_chaos(7);
        n.set_default_faults(Some(FaultProfile::loss(1.0)));
        assert_eq!(
            n.send(SimTime::ZERO, MachineId(2), MachineId(9), 10),
            Delivery::Dropped
        );
        // Loopback is never subject to chaos.
        assert!(matches!(
            n.send(SimTime::ZERO, MachineId(2), MachineId(2), 10),
            Delivery::At(_)
        ));
        n.set_default_faults(None);
        assert!(matches!(
            n.send(SimTime::ZERO, MachineId(2), MachineId(9), 10),
            Delivery::At(_)
        ));
    }

    #[test]
    fn per_link_profile_overrides_default() {
        let mut n = net();
        n.set_default_faults(Some(FaultProfile::loss(1.0)));
        n.set_link_faults(MachineId(0), MachineId(1), FaultProfile::default());
        assert!(matches!(
            n.send(SimTime::ZERO, MachineId(0), MachineId(1), 10),
            Delivery::At(_)
        ));
        assert_eq!(
            n.send(SimTime::ZERO, MachineId(0), MachineId(2), 10),
            Delivery::Dropped
        );
    }

    #[test]
    fn loss_rate_is_approximately_honoured() {
        let mut n = net();
        n.reseed_chaos(42);
        n.set_default_faults(Some(FaultProfile::loss(0.1)));
        let total = 20_000u64;
        for i in 0..total {
            n.send(SimTime::from_millis(i), MachineId(0), MachineId(1), 10);
        }
        let rate = n.chaos_dropped() as f64 / total as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed loss rate {rate}");
    }

    #[test]
    fn burst_loss_clusters_drops() {
        let mut n = net();
        n.reseed_chaos(99);
        n.set_default_faults(Some(FaultProfile::default().with_burst(BurstLoss {
            good_to_bad: 0.02,
            bad_to_good: 0.2,
            bad_loss_prob: 1.0,
        })));
        let total = 20_000u64;
        let mut outcomes = Vec::with_capacity(total as usize);
        for i in 0..total {
            let d = n.send(SimTime::from_millis(i), MachineId(0), MachineId(1), 10);
            outcomes.push(d == Delivery::Dropped);
        }
        let drops = outcomes.iter().filter(|&&d| d).count() as f64;
        // Stationary bad-state share is 0.02 / (0.02 + 0.2) ~ 9 %.
        let rate = drops / total as f64;
        assert!((0.05..0.15).contains(&rate), "burst loss rate {rate}");
        // Burstiness: drops are followed by drops far more often than the
        // marginal rate would predict.
        let mut after_drop = 0.0;
        let mut after_drop_dropped = 0.0;
        for w in outcomes.windows(2) {
            if w[0] {
                after_drop += 1.0;
                if w[1] {
                    after_drop_dropped += 1.0;
                }
            }
        }
        let conditional = after_drop_dropped / after_drop;
        assert!(
            conditional > 2.0 * rate,
            "drops should cluster: P(drop|drop) = {conditional:.3}, P(drop) = {rate:.3}"
        );
    }

    #[test]
    fn jitter_can_reorder_messages() {
        let mut n = net();
        n.reseed_chaos(5);
        n.set_default_faults(Some(
            FaultProfile::default().with_jitter(SimDuration::from_micros(5_000)),
        ));
        let mut arrivals = Vec::new();
        for i in 0..40u64 {
            let d = n.send(SimTime::ZERO, MachineId(0), MachineId(1), 100 + i);
            arrivals.push(d.time().unwrap());
        }
        assert!(
            arrivals.windows(2).any(|w| w[1] < w[0]),
            "5 ms jitter on ~0.1 ms spacing must reorder something"
        );
    }

    #[test]
    fn duplication_yields_two_arrivals() {
        let mut n = net();
        n.reseed_chaos(11);
        n.set_default_faults(Some(FaultProfile::default().with_duplication(1.0)));
        let d = n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000);
        match d {
            Delivery::Duplicated { first, second } => {
                assert_eq!(first, SimTime::from_micros(1_100));
                assert_eq!(second, SimTime::from_micros(1_200));
                assert_eq!(d.time(), Some(first));
                assert_eq!(d.duplicate_time(), Some(second));
            }
            other => panic!("expected duplication, got {other:?}"),
        }
        assert_eq!(n.messages_duplicated(), 1);
        assert_eq!(n.messages_dropped(), 0);
    }

    #[test]
    fn delay_factor_inflates_delivery() {
        let mut n = net();
        n.set_link_faults(
            MachineId(0),
            MachineId(1),
            FaultProfile::default().with_delay_factor(10.0),
        );
        let d = n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000);
        // (1 ms serialization + 0.1 ms latency) x 10.
        assert_eq!(d, Delivery::At(SimTime::from_micros(11_000)));
    }

    #[test]
    fn chaos_is_reproducible_per_seed() {
        let run = |seed: u64| {
            let mut n = net();
            n.reseed_chaos(seed);
            n.set_default_faults(Some(FaultProfile::loss(0.2).with_duplication(0.1)));
            (0..200u64)
                .map(|i| n.send(SimTime::from_millis(i), MachineId(0), MachineId(1), 64))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1234), run(1234));
        assert_ne!(run(1234), run(5678));
    }

    #[test]
    fn busy_entries_expire_and_are_reclaimed() {
        // Touch well over the reclaim threshold at t=0. The mid-spray sweep
        // (at 1,024 entries) keeps everything — nothing has expired yet —
        // and doubles the threshold to 2,048.
        let mut n = net();
        let side = 40u32; // 40 x 39 = 1,560 ordered links
        for s in 0..side {
            for d in 0..side {
                if s != d {
                    n.send(SimTime::ZERO, MachineId(s), MachineId(d), 100);
                }
            }
        }
        assert_eq!(n.active_busy_links(), 1_560);
        // Long after those drain, fresh traffic pushes the map back across
        // the threshold; that sweep sheds every expired t=0 entry while
        // keeping the in-flight ones.
        let later = SimTime::from_secs(3600);
        for i in 0..600u32 {
            n.send(later, MachineId(1_000 + i), MachineId(2_000 + i), 100);
        }
        assert!(
            n.active_busy_links() < 700,
            "stale busy entries survive the sweep: {}",
            n.active_busy_links()
        );
        // Delivery math is unchanged by reclamation: the (0,1) link's
        // expired entry and an absent entry behave identically.
        let d = n.send(later, MachineId(0), MachineId(1), 1_000);
        assert_eq!(d, Delivery::At(later + SimDuration::from_micros(1_100)));
    }

    #[test]
    fn partition_degree_gates_are_consistent() {
        // A partition on {0,1} must not disturb traffic where only one
        // endpoint has partition involvement.
        let mut n = net();
        n.set_partitioned(MachineId(0), MachineId(1), true);
        assert!(matches!(
            n.send(SimTime::ZERO, MachineId(0), MachineId(2), 10),
            Delivery::At(_)
        ));
        assert!(matches!(
            n.send(SimTime::ZERO, MachineId(2), MachineId(1), 10),
            Delivery::At(_)
        ));
        // Heal and re-cut through the reversed pair; degrees stay balanced.
        n.set_partitioned(MachineId(1), MachineId(0), false);
        n.set_partitioned(MachineId(1), MachineId(0), true);
        assert_eq!(
            n.send(SimTime::ZERO, MachineId(0), MachineId(1), 10),
            Delivery::Dropped
        );
        n.set_partitioned(MachineId(0), MachineId(1), false);
        assert!(matches!(
            n.send(SimTime::ZERO, MachineId(0), MachineId(1), 10),
            Delivery::At(_)
        ));
    }

    #[test]
    fn sparse_footprint_beats_dense_at_scale() {
        // 5,000 machines: dense needs four 8192² matrices; sparse holds
        // only what traffic and chaos actually touch.
        let dense = Network::dense_equivalent_bytes(5_000);
        assert!(dense > 4_000_000_000, "dense 5k-machine bytes: {dense}");
        let mut n = net();
        // A ring of 5,000 machines' worth of traffic: 5,000 active links.
        for i in 0..5_000u32 {
            n.send(SimTime::ZERO, MachineId(i), MachineId((i + 1) % 5_000), 100);
        }
        let sparse = n.sparse_state_bytes();
        assert!(
            sparse * 10 < dense,
            "sparse ({sparse} B) should be well under 10% of dense ({dense} B)"
        );
    }
}
