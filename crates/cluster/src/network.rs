//! The LAN model: per-message propagation latency plus per-link FIFO
//! serialization at a configurable bandwidth.
//!
//! Like [`Machine`](crate::Machine), the network is passive: the sender asks
//! for a delivery instant and schedules its own delivery event. Each ordered
//! machine pair is an independent link whose serializer is busy until the
//! previous message has been pushed out, so bursts queue rather than
//! teleport. Loopback messages (same machine) pay only a small local cost.

use std::collections::{HashMap, HashSet};

use sps_sim::{SimDuration, SimTime};

use crate::machine::MachineId;

/// Configuration for [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// One-way propagation latency between distinct machines.
    pub latency: SimDuration,
    /// Link bandwidth in bytes per second (1 Gbps LAN by default).
    pub bandwidth_bytes_per_sec: f64,
    /// Delivery cost for loopback (same-machine) messages.
    pub loopback_latency: SimDuration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            // A switched 1 Gbps LAN, as in the paper's testbed.
            latency: SimDuration::from_micros(150),
            bandwidth_bytes_per_sec: 125_000_000.0, // 1 Gbps
            loopback_latency: SimDuration::from_micros(2),
        }
    }
}

/// The delivery verdict for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message arrives at the given instant.
    At(SimTime),
    /// The message is lost (network partition).
    Dropped,
}

impl Delivery {
    /// The arrival instant, or `None` if the message was dropped.
    pub fn time(self) -> Option<SimTime> {
        match self {
            Delivery::At(t) => Some(t),
            Delivery::Dropped => None,
        }
    }
}

/// A full-duplex switched network between machines.
///
/// ```
/// use sps_cluster::{Delivery, MachineId, Network, NetworkConfig};
/// use sps_sim::SimTime;
///
/// let mut net = Network::new(NetworkConfig::default());
/// let when = net.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000);
/// assert!(matches!(when, Delivery::At(t) if t > SimTime::ZERO));
/// ```
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    /// Per ordered (src, dst) pair: when the link serializer frees up.
    link_busy_until: HashMap<(MachineId, MachineId), SimTime>,
    /// Unordered partitioned pairs; messages between them are dropped.
    partitions: HashSet<(MachineId, MachineId)>,
    messages_sent: u64,
    messages_dropped: u64,
    bytes_sent: u64,
}

impl Network {
    /// Creates a network with the given configuration.
    pub fn new(config: NetworkConfig) -> Self {
        assert!(
            config.bandwidth_bytes_per_sec > 0.0 && config.bandwidth_bytes_per_sec.is_finite(),
            "bandwidth must be positive"
        );
        Network {
            config,
            link_busy_until: HashMap::new(),
            partitions: HashSet::new(),
            messages_sent: 0,
            messages_dropped: 0,
            bytes_sent: 0,
        }
    }

    /// Sends `bytes` from `src` to `dst` at `now`; returns the delivery
    /// verdict. The caller schedules the actual delivery event.
    pub fn send(&mut self, now: SimTime, src: MachineId, dst: MachineId, bytes: u64) -> Delivery {
        self.messages_sent += 1;
        if self.is_partitioned(src, dst) {
            self.messages_dropped += 1;
            return Delivery::Dropped;
        }
        self.bytes_sent += bytes;
        if src == dst {
            return Delivery::At(now + self.config.loopback_latency);
        }
        let ser = SimDuration::from_secs_f64(bytes as f64 / self.config.bandwidth_bytes_per_sec);
        let busy = self
            .link_busy_until
            .entry((src, dst))
            .or_insert(SimTime::ZERO);
        let start = if *busy > now { *busy } else { now };
        let done_serializing = start + ser;
        *busy = done_serializing;
        Delivery::At(done_serializing + self.config.latency)
    }

    /// Cuts (or heals) the link between two machines, in both directions.
    pub fn set_partitioned(&mut self, a: MachineId, b: MachineId, partitioned: bool) {
        let key = if a <= b { (a, b) } else { (b, a) };
        if partitioned {
            self.partitions.insert(key);
        } else {
            self.partitions.remove(&key);
        }
    }

    /// `true` if messages between `a` and `b` are currently dropped.
    pub fn is_partitioned(&self, a: MachineId, b: MachineId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.partitions.contains(&key)
    }

    /// Total messages offered to the network.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages lost to partitions.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Total payload bytes accepted for delivery.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NetworkConfig {
            latency: SimDuration::from_micros(100),
            bandwidth_bytes_per_sec: 1_000_000.0, // 1 MB/s for easy numbers
            loopback_latency: SimDuration::from_micros(1),
        })
    }

    #[test]
    fn latency_plus_serialization() {
        let mut n = net();
        // 1000 bytes at 1 MB/s = 1 ms serialization + 0.1 ms latency.
        let d = n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000);
        assert_eq!(d, Delivery::At(SimTime::from_micros(1_100)));
    }

    #[test]
    fn bursts_queue_on_the_link() {
        let mut n = net();
        let first = n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000);
        let second = n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000);
        assert_eq!(first, Delivery::At(SimTime::from_micros(1_100)));
        // Second message waits for the first to serialize.
        assert_eq!(second, Delivery::At(SimTime::from_micros(2_100)));
    }

    #[test]
    fn distinct_links_are_independent() {
        let mut n = net();
        n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000_000);
        let other = n.send(SimTime::ZERO, MachineId(0), MachineId(2), 1_000);
        assert_eq!(other, Delivery::At(SimTime::from_micros(1_100)));
    }

    #[test]
    fn reverse_direction_is_independent() {
        let mut n = net();
        n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000_000);
        let reverse = n.send(SimTime::ZERO, MachineId(1), MachineId(0), 1_000);
        assert_eq!(reverse, Delivery::At(SimTime::from_micros(1_100)));
    }

    #[test]
    fn loopback_is_cheap_and_unqueued() {
        let mut n = net();
        let a = n.send(SimTime::ZERO, MachineId(3), MachineId(3), 1_000_000);
        let b = n.send(SimTime::ZERO, MachineId(3), MachineId(3), 1_000_000);
        assert_eq!(a, Delivery::At(SimTime::from_micros(1)));
        assert_eq!(b, Delivery::At(SimTime::from_micros(1)));
    }

    #[test]
    fn partitions_drop_both_directions() {
        let mut n = net();
        n.set_partitioned(MachineId(0), MachineId(1), true);
        assert_eq!(
            n.send(SimTime::ZERO, MachineId(0), MachineId(1), 10),
            Delivery::Dropped
        );
        assert_eq!(
            n.send(SimTime::ZERO, MachineId(1), MachineId(0), 10),
            Delivery::Dropped
        );
        n.set_partitioned(MachineId(1), MachineId(0), false);
        assert!(matches!(
            n.send(SimTime::ZERO, MachineId(0), MachineId(1), 10),
            Delivery::At(_)
        ));
        assert_eq!(n.messages_dropped(), 2);
    }

    #[test]
    fn counters_accumulate() {
        let mut n = net();
        n.send(SimTime::ZERO, MachineId(0), MachineId(1), 100);
        n.send(SimTime::ZERO, MachineId(0), MachineId(1), 200);
        assert_eq!(n.messages_sent(), 2);
        assert_eq!(n.bytes_sent(), 300);
    }

    #[test]
    fn idle_link_does_not_backdate() {
        let mut n = net();
        n.send(SimTime::ZERO, MachineId(0), MachineId(1), 1_000);
        // Long after the link drained, delivery is measured from `now`.
        let late = n.send(SimTime::from_secs(1), MachineId(0), MachineId(1), 1_000);
        assert_eq!(
            late,
            Delivery::At(SimTime::from_secs(1) + SimDuration::from_micros(1_100))
        );
    }
}
