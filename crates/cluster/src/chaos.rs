//! Chaos fault injection: per-link fault profiles and declarative,
//! time-stamped chaos schedules.
//!
//! The paper's testbed is a well-behaved switched LAN, but its *premise* is
//! transient unavailability — so validating the AS/PS/Hybrid protocols
//! requires a network that can misbehave on demand. A [`FaultProfile`]
//! describes how one directed link misbehaves (independent loss, bursty
//! Gilbert–Elliott loss, delay jitter and hence reordering, duplication,
//! and slow-link delay inflation). A [`ChaosPlan`] is a declarative list of
//! timed [`ChaosAction`]s — loss windows, flapping links, one-way
//! partitions, correlated fail-stops, gray degradation — that a harness
//! replays against the cluster. Everything is pure data here; the
//! [`Network`](crate::Network) consumes profiles and the simulation world
//! applies scheduled actions.
//!
//! Determinism: all randomness is drawn from the network's dedicated chaos
//! RNG stream, and **only** for sends that an active profile covers. A run
//! with no profiles installed draws nothing and is bit-identical to a run
//! on a build without chaos at all.

use sps_sim::{SimDuration, SimTime};

use crate::domain::{DomainId, SwitchId};
use crate::machine::MachineId;

/// Parameters of the two-state Gilbert–Elliott burst-loss chain.
///
/// The link is either *good* or *bad*. The state is re-drawn per message:
/// from good it enters bad with probability `good_to_bad`; from bad it
/// returns to good with probability `bad_to_good` (so mean burst length is
/// `1 / bad_to_good` messages). While bad, each message is lost with
/// probability `bad_loss_prob`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstLoss {
    /// Per-message probability of entering the bad (bursty) state.
    pub good_to_bad: f64,
    /// Per-message probability of leaving the bad state.
    pub bad_to_good: f64,
    /// Loss probability while the link is in the bad state.
    pub bad_loss_prob: f64,
}

impl BurstLoss {
    fn validate(&self) {
        for (name, p) in [
            ("good_to_bad", self.good_to_bad),
            ("bad_to_good", self.bad_to_good),
            ("bad_loss_prob", self.bad_loss_prob),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "burst {name} must be a probability, got {p}"
            );
        }
    }
}

/// How one *directed* link misbehaves.
///
/// A profile combines independent per-message loss, an optional
/// Gilbert–Elliott burst chain, uniform delay jitter (which reorders
/// messages relative to FIFO serialization order), duplication, and a
/// delay-inflation factor modelling a slow (gray-failed) link. The default
/// profile is a no-op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Independent per-message loss probability.
    pub loss_prob: f64,
    /// Optional bursty-loss chain layered on top of `loss_prob`.
    pub burst: Option<BurstLoss>,
    /// Extra delivery delay drawn uniformly from `[0, jitter)` per message.
    /// Non-zero jitter produces reordering.
    pub jitter: SimDuration,
    /// Probability that a delivered message arrives twice.
    pub duplicate_prob: f64,
    /// Multiplier on serialization + propagation delay (gray/slow link).
    pub delay_factor: f64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            loss_prob: 0.0,
            burst: None,
            jitter: SimDuration::ZERO,
            duplicate_prob: 0.0,
            delay_factor: 1.0,
        }
    }
}

impl FaultProfile {
    /// A profile that only drops messages, each independently with
    /// probability `p`.
    pub fn loss(p: f64) -> Self {
        FaultProfile {
            loss_prob: p,
            ..FaultProfile::default()
        }
    }

    /// A profile that drops everything: a one-way blackhole when installed
    /// on a single directed link.
    pub fn blackhole() -> Self {
        FaultProfile::loss(1.0)
    }

    /// Adds a Gilbert–Elliott burst chain.
    pub fn with_burst(mut self, burst: BurstLoss) -> Self {
        self.burst = Some(burst);
        self
    }

    /// Adds uniform `[0, jitter)` delivery jitter.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Adds per-message duplication with probability `p`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Multiplies all delay components by `factor` (slow link).
    pub fn with_delay_factor(mut self, factor: f64) -> Self {
        self.delay_factor = factor;
        self
    }

    /// Panics if any parameter is out of range.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.loss_prob),
            "loss_prob must be a probability, got {}",
            self.loss_prob
        );
        assert!(
            (0.0..=1.0).contains(&self.duplicate_prob),
            "duplicate_prob must be a probability, got {}",
            self.duplicate_prob
        );
        assert!(
            self.delay_factor >= 1.0 && self.delay_factor.is_finite(),
            "delay_factor must be >= 1, got {}",
            self.delay_factor
        );
        if let Some(b) = &self.burst {
            b.validate();
        }
    }
}

/// One fault-injection action, applied at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosAction {
    /// Installs `profile` on the directed link `src -> dst`.
    LinkFaults {
        /// Sending side of the directed link.
        src: MachineId,
        /// Receiving side of the directed link.
        dst: MachineId,
        /// The profile to install.
        profile: FaultProfile,
    },
    /// Removes any profile from the directed link `src -> dst`.
    ClearLinkFaults {
        /// Sending side of the directed link.
        src: MachineId,
        /// Receiving side of the directed link.
        dst: MachineId,
    },
    /// Sets (or with `None` clears) the profile applied to every link that
    /// has no per-link profile of its own.
    DefaultFaults {
        /// The new default profile.
        profile: Option<FaultProfile>,
    },
    /// Cuts the link between two machines in both directions.
    Partition {
        /// One endpoint.
        a: MachineId,
        /// The other endpoint.
        b: MachineId,
    },
    /// Heals a previously cut link.
    Heal {
        /// One endpoint.
        a: MachineId,
        /// The other endpoint.
        b: MachineId,
    },
    /// Fail-stops a machine (crash; tasks lost, no new work accepted).
    FailStop {
        /// The machine to crash.
        machine: MachineId,
    },
    /// Gray failure: degrades a machine's CPU capacity without crashing it.
    GrayDegrade {
        /// The machine to degrade.
        machine: MachineId,
        /// New capacity (1.0 = healthy full speed).
        capacity: f64,
    },
    /// Correlated domain failure: fail-stops every machine in a rack at
    /// once (the harness expands the rack to its member machines from the
    /// cluster's [`FaultTopology`](crate::FaultTopology)).
    FailDomain {
        /// The rack whose machines all crash.
        rack: DomainId,
    },
    /// Partitions every machine behind a switch from the rest of the
    /// cluster (both directions; the harness expands membership from the
    /// topology).
    PartitionSwitch {
        /// The switch that goes dark.
        switch: SwitchId,
    },
    /// Heals a previous [`PartitionSwitch`](Self::PartitionSwitch).
    HealSwitch {
        /// The switch to restore.
        switch: SwitchId,
    },
}

impl ChaosAction {
    /// A short stable token describing the action, for trace records.
    /// Contains no characters that need JSON escaping.
    pub fn label(&self) -> String {
        match self {
            ChaosAction::LinkFaults { src, dst, profile } => {
                format!(
                    "link_faults {src}->{dst} loss={} dup={} delay_x{}",
                    profile.loss_prob, profile.duplicate_prob, profile.delay_factor
                )
            }
            ChaosAction::ClearLinkFaults { src, dst } => {
                format!("clear_link_faults {src}->{dst}")
            }
            ChaosAction::DefaultFaults { profile: Some(p) } => {
                format!(
                    "default_faults loss={} dup={}",
                    p.loss_prob, p.duplicate_prob
                )
            }
            ChaosAction::DefaultFaults { profile: None } => "clear_default_faults".to_string(),
            ChaosAction::Partition { a, b } => format!("partition {a}<->{b}"),
            ChaosAction::Heal { a, b } => format!("heal {a}<->{b}"),
            ChaosAction::FailStop { machine } => format!("fail_stop {machine}"),
            ChaosAction::GrayDegrade { machine, capacity } => {
                format!("gray_degrade {machine} cap={capacity}")
            }
            ChaosAction::FailDomain { rack } => format!("fail_domain {rack}"),
            ChaosAction::PartitionSwitch { switch } => format!("partition_switch {switch}"),
            ChaosAction::HealSwitch { switch } => format!("heal_switch {switch}"),
        }
    }
}

/// One timed step of a [`ChaosPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosStep {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: ChaosAction,
}

/// A declarative chaos campaign: an ordered list of timed actions.
///
/// Build one with the fluent helpers, then hand it to a harness that
/// schedules each step at its instant. Steps keep insertion order for
/// actions scheduled at the same instant, so campaigns are deterministic.
///
/// ```
/// use sps_cluster::{ChaosPlan, FaultProfile, MachineId};
/// use sps_sim::SimTime;
///
/// let plan = ChaosPlan::new()
///     .loss_window(
///         SimTime::from_secs(2),
///         SimTime::from_secs(8),
///         FaultProfile::loss(0.02),
///     )
///     .correlated_fail_stop(SimTime::from_secs(5), &[MachineId(1), MachineId(2)]);
/// assert_eq!(plan.steps().len(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    steps: Vec<ChaosStep>,
}

impl ChaosPlan {
    /// An empty plan.
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Appends one raw step.
    pub fn step(mut self, at: SimTime, action: ChaosAction) -> Self {
        if let ChaosAction::LinkFaults { profile, .. } = &action {
            profile.validate();
        }
        if let ChaosAction::DefaultFaults {
            profile: Some(profile),
        } = &action
        {
            profile.validate();
        }
        self.steps.push(ChaosStep { at, action });
        self
    }

    /// Applies `profile` to all links (the network-wide default) from
    /// `from` until `until`.
    pub fn loss_window(self, from: SimTime, until: SimTime, profile: FaultProfile) -> Self {
        assert!(from <= until, "loss window ends before it starts");
        self.step(
            from,
            ChaosAction::DefaultFaults {
                profile: Some(profile),
            },
        )
        .step(until, ChaosAction::DefaultFaults { profile: None })
    }

    /// Applies `profile` to both directions of the `a <-> b` link from
    /// `from` until `until`.
    pub fn link_window(
        self,
        from: SimTime,
        until: SimTime,
        a: MachineId,
        b: MachineId,
        profile: FaultProfile,
    ) -> Self {
        assert!(from <= until, "link window ends before it starts");
        self.step(
            from,
            ChaosAction::LinkFaults {
                src: a,
                dst: b,
                profile,
            },
        )
        .step(
            from,
            ChaosAction::LinkFaults {
                src: b,
                dst: a,
                profile,
            },
        )
        .step(until, ChaosAction::ClearLinkFaults { src: a, dst: b })
        .step(until, ChaosAction::ClearLinkFaults { src: b, dst: a })
    }

    /// Blackholes only the `src -> dst` direction (a one-way partition, the
    /// classic split-brain trigger) from `from` until `until`.
    pub fn one_way_partition(
        self,
        from: SimTime,
        until: SimTime,
        src: MachineId,
        dst: MachineId,
    ) -> Self {
        assert!(from <= until, "one-way partition ends before it starts");
        self.step(
            from,
            ChaosAction::LinkFaults {
                src,
                dst,
                profile: FaultProfile::blackhole(),
            },
        )
        .step(until, ChaosAction::ClearLinkFaults { src, dst })
    }

    /// Cuts `a <-> b` from `from` until `until` (both directions).
    pub fn partition_window(
        self,
        from: SimTime,
        until: SimTime,
        a: MachineId,
        b: MachineId,
    ) -> Self {
        assert!(from <= until, "partition window ends before it starts");
        self.step(from, ChaosAction::Partition { a, b })
            .step(until, ChaosAction::Heal { a, b })
    }

    /// A flapping link: `a <-> b` alternates cut/healed every `period`
    /// starting (cut) at `from`, with a final heal at or after `until`.
    pub fn flapping_link(
        mut self,
        from: SimTime,
        until: SimTime,
        period: SimDuration,
        a: MachineId,
        b: MachineId,
    ) -> Self {
        assert!(from < until, "flapping window ends before it starts");
        assert!(period > SimDuration::ZERO, "flap period must be positive");
        let mut t = from;
        let mut cut = true;
        while t < until {
            let action = if cut {
                ChaosAction::Partition { a, b }
            } else {
                ChaosAction::Heal { a, b }
            };
            self = self.step(t, action);
            cut = !cut;
            t += period;
        }
        if !cut {
            // Last scheduled action was a cut; always leave the link healed.
            self = self.step(t, ChaosAction::Heal { a, b });
        }
        self
    }

    /// Correlated failure: fail-stops every listed machine at the same
    /// instant (Su & Zhou's regime where single-fault injection
    /// underestimates recovery cost).
    pub fn correlated_fail_stop(mut self, at: SimTime, machines: &[MachineId]) -> Self {
        for &machine in machines {
            self = self.step(at, ChaosAction::FailStop { machine });
        }
        self
    }

    /// Correlated *domain* failure: fail-stops every machine in `rack` at
    /// `at`. The rack expands to its member machines when the harness
    /// applies the step against the cluster's topology.
    pub fn domain_fail_stop(self, at: SimTime, rack: DomainId) -> Self {
        self.step(at, ChaosAction::FailDomain { rack })
    }

    /// Partitions every machine behind `switch` from the rest of the
    /// cluster from `from` until `until`, then heals.
    pub fn switch_partition_window(self, from: SimTime, until: SimTime, switch: SwitchId) -> Self {
        assert!(from <= until, "switch partition ends before it starts");
        self.step(from, ChaosAction::PartitionSwitch { switch })
            .step(until, ChaosAction::HealSwitch { switch })
    }

    /// Gray-degrades a machine's capacity from `from` until `until`, then
    /// restores full capacity.
    pub fn gray_window(
        self,
        from: SimTime,
        until: SimTime,
        machine: MachineId,
        capacity: f64,
    ) -> Self {
        assert!(from <= until, "gray window ends before it starts");
        self.step(from, ChaosAction::GrayDegrade { machine, capacity })
            .step(
                until,
                ChaosAction::GrayDegrade {
                    machine,
                    capacity: 1.0,
                },
            )
    }

    /// The steps in insertion order.
    pub fn steps(&self) -> &[ChaosStep] {
        &self.steps
    }

    /// `true` when the plan contains no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_noop() {
        let p = FaultProfile::default();
        assert_eq!(p.loss_prob, 0.0);
        assert_eq!(p.duplicate_prob, 0.0);
        assert_eq!(p.delay_factor, 1.0);
        assert!(p.burst.is_none());
        p.validate();
    }

    #[test]
    fn builders_compose() {
        let p = FaultProfile::loss(0.05)
            .with_jitter(SimDuration::from_micros(500))
            .with_duplication(0.01)
            .with_delay_factor(3.0)
            .with_burst(BurstLoss {
                good_to_bad: 0.01,
                bad_to_good: 0.2,
                bad_loss_prob: 0.8,
            });
        p.validate();
        assert_eq!(p.loss_prob, 0.05);
        assert!(p.burst.is_some());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_loss_prob_rejected() {
        FaultProfile::loss(1.5).validate();
    }

    #[test]
    #[should_panic(expected = "delay_factor")]
    fn sub_unity_delay_factor_rejected() {
        FaultProfile::default().with_delay_factor(0.5).validate();
    }

    #[test]
    fn loss_window_opens_and_closes() {
        let plan = ChaosPlan::new().loss_window(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            FaultProfile::loss(0.1),
        );
        assert_eq!(plan.steps().len(), 2);
        assert!(matches!(
            plan.steps()[0].action,
            ChaosAction::DefaultFaults { profile: Some(_) }
        ));
        assert!(matches!(
            plan.steps()[1].action,
            ChaosAction::DefaultFaults { profile: None }
        ));
    }

    #[test]
    fn one_way_partition_is_directional_blackhole() {
        let plan = ChaosPlan::new().one_way_partition(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            MachineId(3),
            MachineId(7),
        );
        match plan.steps()[0].action {
            ChaosAction::LinkFaults { src, dst, profile } => {
                assert_eq!((src, dst), (MachineId(3), MachineId(7)));
                assert_eq!(profile.loss_prob, 1.0);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn flapping_link_always_ends_healed() {
        for secs in [3u64, 4] {
            let plan = ChaosPlan::new().flapping_link(
                SimTime::from_secs(1),
                SimTime::from_secs(secs),
                SimDuration::from_secs(1),
                MachineId(0),
                MachineId(1),
            );
            let last = plan.steps().last().unwrap();
            assert!(
                matches!(last.action, ChaosAction::Heal { .. }),
                "window to {secs}s must end healed, got {:?}",
                last.action
            );
            let cuts = plan
                .steps()
                .iter()
                .filter(|s| matches!(s.action, ChaosAction::Partition { .. }))
                .count();
            let heals = plan
                .steps()
                .iter()
                .filter(|s| matches!(s.action, ChaosAction::Heal { .. }))
                .count();
            assert_eq!(cuts, heals, "every cut has a heal");
        }
    }

    #[test]
    fn domain_builders_compose() {
        let plan = ChaosPlan::new()
            .domain_fail_stop(SimTime::from_secs(3), DomainId(1))
            .switch_partition_window(SimTime::from_secs(4), SimTime::from_secs(6), SwitchId(0));
        assert_eq!(plan.steps().len(), 3);
        assert!(matches!(
            plan.steps()[0].action,
            ChaosAction::FailDomain { rack: DomainId(1) }
        ));
        assert!(matches!(
            plan.steps()[1].action,
            ChaosAction::PartitionSwitch {
                switch: SwitchId(0)
            }
        ));
        assert!(matches!(
            plan.steps()[2].action,
            ChaosAction::HealSwitch {
                switch: SwitchId(0)
            }
        ));
    }

    #[test]
    fn correlated_fail_stop_hits_all_machines_at_once() {
        let at = SimTime::from_secs(5);
        let plan = ChaosPlan::new().correlated_fail_stop(at, &[MachineId(1), MachineId(6)]);
        assert_eq!(plan.steps().len(), 2);
        assert!(plan.steps().iter().all(|s| s.at == at));
    }

    #[test]
    fn labels_are_json_safe() {
        let actions = [
            ChaosAction::LinkFaults {
                src: MachineId(0),
                dst: MachineId(1),
                profile: FaultProfile::loss(0.5),
            },
            ChaosAction::DefaultFaults { profile: None },
            ChaosAction::Partition {
                a: MachineId(0),
                b: MachineId(1),
            },
            ChaosAction::GrayDegrade {
                machine: MachineId(2),
                capacity: 0.25,
            },
            ChaosAction::FailDomain { rack: DomainId(2) },
            ChaosAction::PartitionSwitch {
                switch: SwitchId(1),
            },
            ChaosAction::HealSwitch {
                switch: SwitchId(1),
            },
        ];
        for a in actions {
            let label = a.label();
            assert!(!label.contains('"') && !label.contains('\\'), "{label}");
        }
    }
}
