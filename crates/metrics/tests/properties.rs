//! Randomized property tests for the metrics collectors, driven by seeded
//! loops (the dev-dependency on `sps-sim` supplies the deterministic RNG;
//! the library itself stays dependency-free).

use sps_metrics::{Cdf, MsgClass, MsgCounters, OnlineStats};
use sps_sim::SimRng;

fn random_vec(rng: &mut SimRng, len_lo: u64, len_hi: u64, lo: f64, hi: f64) -> Vec<f64> {
    let n = rng.uniform_u64(len_lo, len_hi);
    (0..n).map(|_| rng.uniform(lo, hi)).collect()
}

/// Welford merging is equivalent to single-pass accumulation, for any split
/// point.
#[test]
fn stats_merge_any_split() {
    let mut rng = SimRng::seed_from(0x5713);
    for _case in 0..64 {
        let xs = random_vec(&mut rng, 2, 200, -1e6, 1e6);
        let split_frac = rng.unit();
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let whole: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..split].iter().copied().collect();
        let right: OnlineStats = xs[split..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        assert!(
            (left.population_variance() - whole.population_variance()).abs()
                <= 1e-5 * whole.population_variance().abs().max(1.0)
        );
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }
}

/// Quantiles are monotone in q and bounded by the extrema.
#[test]
fn cdf_quantiles_are_monotone() {
    let mut rng = SimRng::seed_from(0xCDF1);
    for _case in 0..64 {
        let xs = random_vec(&mut rng, 1, 200, -1e3, 1e3);
        let mut cdf: Cdf = xs.iter().copied().collect();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = min;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = cdf.quantile(q).expect("non-empty");
            assert!(v >= prev, "quantiles must not decrease");
            assert!((min..=max).contains(&v));
            prev = v;
        }
    }
}

/// `fraction_at_most` agrees with a direct count and is monotone.
#[test]
fn cdf_fraction_matches_count() {
    let mut rng = SimRng::seed_from(0xCDF2);
    for _case in 0..64 {
        let xs = random_vec(&mut rng, 1, 100, -100.0, 100.0);
        let probe = rng.uniform(-120.0, 120.0);
        let mut cdf: Cdf = xs.iter().copied().collect();
        let expected = xs.iter().filter(|&&x| x <= probe).count() as f64 / xs.len() as f64;
        assert!((cdf.fraction_at_most(probe) - expected).abs() < 1e-12);
    }
}

/// Counter addition is commutative and preserves element totals.
#[test]
fn counters_add_commutes() {
    let mut rng = SimRng::seed_from(0xC017);
    for _case in 0..64 {
        let classes = MsgClass::ALL;
        let n = rng.uniform_u64(0, 50);
        let records: Vec<(usize, u64)> = (0..n)
            .map(|_| (rng.uniform_u64(0, 7) as usize, rng.uniform_u64(0, 1000)))
            .collect();
        let mut a = MsgCounters::new();
        let mut b = MsgCounters::new();
        for (i, &(class_idx, elements)) in records.iter().enumerate() {
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.record(classes[class_idx], elements);
        }
        assert_eq!(a + b, b + a);
        let total = (a + b).total_elements();
        let expected: u64 = records
            .iter()
            .filter(|(ci, _)| classes[*ci].is_element_class())
            .map(|&(_, e)| e)
            .sum();
        assert_eq!(total, expected);
    }
}

/// The log-linear histogram's p50/p95/p99 stay within one bucket's
/// relative error (12.5% — `1/HISTOGRAM_SUBBUCKETS`) of the exact sorted
/// reference, across distribution shapes: the estimate is the floor of
/// the bucket holding the ranked sample, so `est <= exact < est * 1.125`
/// (and `exact < 1.0` maps to the underflow bucket, estimate 0).
#[test]
fn histogram_quantiles_match_sorted_reference() {
    use sps_metrics::LogLinearHistogram;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    let mut rng = SimRng::seed_from(0x4157);
    // Zipf over ranks 1..=1000 with s=1, scaled so the tail spans buckets.
    let zipf_cum: Vec<f64> = {
        let mut acc = 0.0;
        let mut cum: Vec<f64> = (1..=1000u32)
            .map(|k| {
                acc += 1.0 / k as f64;
                acc
            })
            .collect();
        let total = *cum.last().unwrap();
        for c in &mut cum {
            *c /= total;
        }
        cum
    };

    for dist in 0..3 {
        for _case in 0..16 {
            let n = rng.uniform_u64(50, 2_000);
            let xs: Vec<f64> = (0..n)
                .map(|_| match dist {
                    // Uniform, including sub-1 values (underflow bucket).
                    0 => rng.uniform(0.0, 4_000.0),
                    // Zipf: heavy head at small ranks, long tail.
                    1 => {
                        let u = rng.unit();
                        let rank = zipf_cum.partition_point(|&c| c < u) + 1;
                        rank as f64 * 3.7
                    }
                    // Bimodal: sub-millisecond mode plus a slow mode.
                    _ => {
                        if rng.chance(0.7) {
                            rng.uniform(0.05, 0.95)
                        } else {
                            rng.uniform(500.0, 2_000.0)
                        }
                    }
                })
                .collect();

            let mut hist = LogLinearHistogram::new();
            for &x in &xs {
                hist.observe(x);
            }
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

            for &q in &[0.5, 0.95, 0.99] {
                let est = hist.quantile(q);
                let exact = exact_quantile(&sorted, q);
                if exact < 1.0 {
                    // Sub-1 observations all land in the underflow bucket.
                    assert_eq!(est, 0.0, "dist {dist} q {q}: exact {exact}, est {est}");
                } else {
                    assert!(
                        est <= exact + 1e-9,
                        "dist {dist} q {q}: bucket floor {est} above exact {exact}"
                    );
                    assert!(
                        exact < est * 1.125 + 1e-9,
                        "dist {dist} q {q}: exact {exact} beyond one bucket from {est}"
                    );
                }
            }
        }
    }
}
