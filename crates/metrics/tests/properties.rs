//! Property-based tests for the metrics collectors.

use proptest::prelude::*;
use sps_metrics::{Cdf, MsgClass, MsgCounters, OnlineStats};

proptest! {
    /// Welford merging is equivalent to single-pass accumulation, for any
    /// split point.
    #[test]
    fn stats_merge_any_split(xs in proptest::collection::vec(-1e6f64..1e6, 2..200), split_frac in 0.0f64..1.0) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let whole: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..split].iter().copied().collect();
        let right: OnlineStats = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!(
            (left.population_variance() - whole.population_variance()).abs()
                <= 1e-5 * whole.population_variance().abs().max(1.0)
        );
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    /// Quantiles are monotone in q and bounded by the extrema.
    #[test]
    fn cdf_quantiles_are_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut cdf: Cdf = xs.iter().copied().collect();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = min;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = cdf.quantile(q).expect("non-empty");
            prop_assert!(v >= prev, "quantiles must not decrease");
            prop_assert!((min..=max).contains(&v));
            prev = v;
        }
    }

    /// `fraction_at_most` agrees with a direct count and is monotone.
    #[test]
    fn cdf_fraction_matches_count(xs in proptest::collection::vec(-100f64..100.0, 1..100), probe in -120f64..120.0) {
        let mut cdf: Cdf = xs.iter().copied().collect();
        let expected = xs.iter().filter(|&&x| x <= probe).count() as f64 / xs.len() as f64;
        prop_assert!((cdf.fraction_at_most(probe) - expected).abs() < 1e-12);
    }

    /// Counter addition is commutative and preserves element totals.
    #[test]
    fn counters_add_commutes(records in proptest::collection::vec((0usize..7, 0u64..1000), 0..50)) {
        let classes = MsgClass::ALL;
        let mut a = MsgCounters::new();
        let mut b = MsgCounters::new();
        for (i, &(class_idx, elements)) in records.iter().enumerate() {
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.record(classes[class_idx], elements);
        }
        prop_assert_eq!(a + b, b + a);
        let total = (a + b).total_elements();
        let expected: u64 = records
            .iter()
            .filter(|(ci, _)| classes[*ci].is_element_class())
            .map(|&(_, e)| e)
            .sum();
        prop_assert_eq!(total, expected);
    }
}
