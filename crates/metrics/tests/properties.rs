//! Randomized property tests for the metrics collectors, driven by seeded
//! loops (the dev-dependency on `sps-sim` supplies the deterministic RNG;
//! the library itself stays dependency-free).

use sps_metrics::{Cdf, MsgClass, MsgCounters, OnlineStats};
use sps_sim::SimRng;

fn random_vec(rng: &mut SimRng, len_lo: u64, len_hi: u64, lo: f64, hi: f64) -> Vec<f64> {
    let n = rng.uniform_u64(len_lo, len_hi);
    (0..n).map(|_| rng.uniform(lo, hi)).collect()
}

/// Welford merging is equivalent to single-pass accumulation, for any split
/// point.
#[test]
fn stats_merge_any_split() {
    let mut rng = SimRng::seed_from(0x5713);
    for _case in 0..64 {
        let xs = random_vec(&mut rng, 2, 200, -1e6, 1e6);
        let split_frac = rng.unit();
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let whole: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..split].iter().copied().collect();
        let right: OnlineStats = xs[split..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        assert!(
            (left.population_variance() - whole.population_variance()).abs()
                <= 1e-5 * whole.population_variance().abs().max(1.0)
        );
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }
}

/// Quantiles are monotone in q and bounded by the extrema.
#[test]
fn cdf_quantiles_are_monotone() {
    let mut rng = SimRng::seed_from(0xCDF1);
    for _case in 0..64 {
        let xs = random_vec(&mut rng, 1, 200, -1e3, 1e3);
        let mut cdf: Cdf = xs.iter().copied().collect();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = min;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = cdf.quantile(q).expect("non-empty");
            assert!(v >= prev, "quantiles must not decrease");
            assert!((min..=max).contains(&v));
            prev = v;
        }
    }
}

/// `fraction_at_most` agrees with a direct count and is monotone.
#[test]
fn cdf_fraction_matches_count() {
    let mut rng = SimRng::seed_from(0xCDF2);
    for _case in 0..64 {
        let xs = random_vec(&mut rng, 1, 100, -100.0, 100.0);
        let probe = rng.uniform(-120.0, 120.0);
        let mut cdf: Cdf = xs.iter().copied().collect();
        let expected = xs.iter().filter(|&&x| x <= probe).count() as f64 / xs.len() as f64;
        assert!((cdf.fraction_at_most(probe) - expected).abs() < 1e-12);
    }
}

/// Counter addition is commutative and preserves element totals.
#[test]
fn counters_add_commutes() {
    let mut rng = SimRng::seed_from(0xC017);
    for _case in 0..64 {
        let classes = MsgClass::ALL;
        let n = rng.uniform_u64(0, 50);
        let records: Vec<(usize, u64)> = (0..n)
            .map(|_| (rng.uniform_u64(0, 7) as usize, rng.uniform_u64(0, 1000)))
            .collect();
        let mut a = MsgCounters::new();
        let mut b = MsgCounters::new();
        for (i, &(class_idx, elements)) in records.iter().enumerate() {
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.record(classes[class_idx], elements);
        }
        assert_eq!(a + b, b + a);
        let total = (a + b).total_elements();
        let expected: u64 = records
            .iter()
            .filter(|(ci, _)| classes[*ci].is_element_class())
            .map(|&(_, e)| e)
            .sum();
        assert_eq!(total, expected);
    }
}
