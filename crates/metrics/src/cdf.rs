//! Empirical distributions: quantiles, CDF evaluation, and CDF curves for
//! the paper's Figure 2/3-style plots.

/// An empirical distribution built from raw samples.
///
/// Samples are kept and sorted lazily; suitable for the experiment sizes in
/// this workspace (up to a few million points).
///
/// ```
/// use sps_metrics::Cdf;
///
/// let mut cdf: Cdf = (1..=100).map(|i| i as f64).collect();
/// assert_eq!(cdf.quantile(0.5), Some(50.0));
/// assert_eq!(cdf.fraction_at_most(25.0), 0.25);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (nearest-rank), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= q <= 1`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        self.ensure_sorted();
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// The median, or `None` when empty.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The fraction of samples `<= x` (0 when empty).
    pub fn fraction_at_most(&mut self, x: f64) -> f64 {
        self.ensure_sorted();
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The sample mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// `points` evenly spaced `(x, F(x))` pairs spanning the sample range —
    /// the series a CDF figure plots.
    ///
    /// Returns an empty vector when there are no samples or `points < 2`.
    pub fn curve(&mut self, points: usize) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        if self.samples.is_empty() || points < 2 {
            return Vec::new();
        }
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                let f =
                    self.samples.partition_point(|&s| s <= x) as f64 / self.samples.len() as f64;
                (x, f)
            })
            .collect()
    }

    /// A sorted copy of the samples.
    pub fn sorted_samples(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.samples
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut c = Cdf::new();
        for x in iter {
            c.record(x);
        }
        c
    }
}

impl Extend<f64> for Cdf {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut c: Cdf = [10.0, 20.0, 30.0, 40.0].into_iter().collect();
        assert_eq!(c.quantile(0.0), Some(10.0));
        assert_eq!(c.quantile(0.25), Some(10.0));
        assert_eq!(c.quantile(0.26), Some(20.0));
        assert_eq!(c.quantile(0.5), Some(20.0));
        assert_eq!(c.quantile(1.0), Some(40.0));
    }

    #[test]
    fn fraction_at_most_counts_inclusive() {
        let mut c: Cdf = [1.0, 2.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(c.fraction_at_most(0.5), 0.0);
        assert_eq!(c.fraction_at_most(2.0), 0.75);
        assert_eq!(c.fraction_at_most(10.0), 1.0);
    }

    #[test]
    fn empty_cdf_is_sane() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.fraction_at_most(1.0), 0.0);
        assert_eq!(c.mean(), 0.0);
        assert!(c.curve(10).is_empty());
    }

    #[test]
    fn curve_spans_range_and_is_monotone() {
        let mut c: Cdf = (0..1000).map(|i| i as f64 / 10.0).collect();
        let curve = c.curve(21);
        assert_eq!(curve.len(), 21);
        assert_eq!(curve[0].0, 0.0);
        assert!((curve[20].0 - 99.9).abs() < 1e-9);
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "CDF must be monotone");
        }
    }

    #[test]
    fn recording_after_query_resorts() {
        let mut c: Cdf = [5.0].into_iter().collect();
        assert_eq!(c.median(), Some(5.0));
        c.record(1.0);
        c.record(9.0);
        assert_eq!(c.median(), Some(5.0));
        assert_eq!(c.sorted_samples(), &[1.0, 5.0, 9.0]);
    }

    #[test]
    fn mean_matches_sum() {
        let c: Cdf = [1.0, 2.0, 3.0].into_iter().collect();
        assert!((c.mean() - 2.0).abs() < 1e-12);
    }
}
