//! Streaming summary statistics (Welford's algorithm).

use std::fmt;

/// Mean / variance / extrema computed in one pass over a stream of samples.
///
/// ```
/// use sps_metrics::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN");
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (divides by `n`), or 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (divides by `n − 1`), or 0 with fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (as if all samples were
    /// recorded here).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.population_std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN)
        )
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample() {
        let s: OnlineStats = [3.5].into_iter().collect();
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn known_variance() {
        let s: OnlineStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.mean(), 2.5);
        assert!((s.population_variance() - 1.25).abs() < 1e-12);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.sum(), 10.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let all: OnlineStats = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a: OnlineStats = (0..37).map(|i| (i as f64).sin() * 10.0).collect();
        let b: OnlineStats = (37..100).map(|i| (i as f64).sin() * 10.0).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        OnlineStats::new().record(f64::NAN);
    }
}
