//! Message accounting in the paper's unit: data elements transmitted.
//!
//! The evaluation's "message overhead" (Figs 6, 10, 11) counts the number of
//! *elements* sent over the network: ordinary data elements, duplicate
//! copies sent by active standby, the elements contained in checkpoint
//! messages (retained output-queue data plus internal state expressed in
//! element units), and state read-back during hybrid rollback. Control
//! traffic (acks, heartbeats, signalling) is tracked alongside in message
//! units for completeness.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Classes of traffic a stream-processing HA system generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MsgClass {
    /// Primary-path data elements.
    Data,
    /// Redundant data elements (second active-standby copy, retransmissions).
    DupData,
    /// Elements carried inside checkpoint messages.
    Checkpoint,
    /// Elements read back from a secondary during hybrid rollback.
    StateTransfer,
    /// Accumulative acknowledgments (queue trimming).
    Ack,
    /// Heartbeat pings and replies.
    Heartbeat,
    /// Deploy/resume/activate and other control signalling.
    Control,
}

impl MsgClass {
    /// All classes, in display order.
    pub const ALL: [MsgClass; 7] = [
        MsgClass::Data,
        MsgClass::DupData,
        MsgClass::Checkpoint,
        MsgClass::StateTransfer,
        MsgClass::Ack,
        MsgClass::Heartbeat,
        MsgClass::Control,
    ];

    /// `true` for classes measured in element units (the paper's overhead
    /// metric).
    pub fn is_element_class(self) -> bool {
        matches!(
            self,
            MsgClass::Data | MsgClass::DupData | MsgClass::Checkpoint | MsgClass::StateTransfer
        )
    }

    fn index(self) -> usize {
        match self {
            MsgClass::Data => 0,
            MsgClass::DupData => 1,
            MsgClass::Checkpoint => 2,
            MsgClass::StateTransfer => 3,
            MsgClass::Ack => 4,
            MsgClass::Heartbeat => 5,
            MsgClass::Control => 6,
        }
    }
}

impl fmt::Display for MsgClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MsgClass::Data => "data",
            MsgClass::DupData => "dup-data",
            MsgClass::Checkpoint => "checkpoint",
            MsgClass::StateTransfer => "state-transfer",
            MsgClass::Ack => "ack",
            MsgClass::Heartbeat => "heartbeat",
            MsgClass::Control => "control",
        };
        f.write_str(name)
    }
}

/// Per-class counts of messages and the elements they carry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsgCounters {
    messages: [u64; 7],
    elements: [u64; 7],
}

impl MsgCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        MsgCounters::default()
    }

    /// Records one message of `class` carrying `elements` element units.
    pub fn record(&mut self, class: MsgClass, elements: u64) {
        self.messages[class.index()] += 1;
        self.elements[class.index()] += elements;
    }

    /// Messages counted in `class`.
    pub fn messages(&self, class: MsgClass) -> u64 {
        self.messages[class.index()]
    }

    /// Element units counted in `class`.
    pub fn elements(&self, class: MsgClass) -> u64 {
        self.elements[class.index()]
    }

    /// Total element units across the element-bearing classes — the paper's
    /// "message overhead (# of elements)".
    pub fn total_elements(&self) -> u64 {
        MsgClass::ALL
            .iter()
            .filter(|c| c.is_element_class())
            .map(|c| self.elements[c.index()])
            .sum()
    }

    /// Total messages across all classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Element overhead relative to a baseline run, as a ratio:
    /// `(self − base) / base`. Returns `None` when the baseline is zero.
    pub fn overhead_vs(&self, base: &MsgCounters) -> Option<f64> {
        let b = base.total_elements();
        if b == 0 {
            return None;
        }
        Some((self.total_elements() as f64 - b as f64) / b as f64)
    }
}

impl Add for MsgCounters {
    type Output = MsgCounters;
    fn add(mut self, rhs: MsgCounters) -> MsgCounters {
        self += rhs;
        self
    }
}

impl AddAssign for MsgCounters {
    fn add_assign(&mut self, rhs: MsgCounters) {
        for i in 0..7 {
            self.messages[i] += rhs.messages[i];
            self.elements[i] += rhs.elements[i];
        }
    }
}

impl fmt::Display for MsgCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for class in MsgClass::ALL {
            let e = self.elements(class);
            let m = self.messages(class);
            if m == 0 {
                continue;
            }
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{class}={e}el/{m}msg")?;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut c = MsgCounters::new();
        c.record(MsgClass::Data, 10);
        c.record(MsgClass::Data, 5);
        c.record(MsgClass::Ack, 0);
        assert_eq!(c.messages(MsgClass::Data), 2);
        assert_eq!(c.elements(MsgClass::Data), 15);
        assert_eq!(c.messages(MsgClass::Ack), 1);
        assert_eq!(c.total_messages(), 3);
    }

    #[test]
    fn total_elements_excludes_control_classes() {
        let mut c = MsgCounters::new();
        c.record(MsgClass::Data, 100);
        c.record(MsgClass::DupData, 50);
        c.record(MsgClass::Checkpoint, 20);
        c.record(MsgClass::StateTransfer, 5);
        c.record(MsgClass::Heartbeat, 999);
        c.record(MsgClass::Ack, 999);
        c.record(MsgClass::Control, 999);
        assert_eq!(c.total_elements(), 175);
    }

    #[test]
    fn overhead_ratio() {
        let mut base = MsgCounters::new();
        base.record(MsgClass::Data, 1_000);
        let mut mine = MsgCounters::new();
        mine.record(MsgClass::Data, 1_000);
        mine.record(MsgClass::Checkpoint, 100);
        assert!((mine.overhead_vs(&base).unwrap() - 0.1).abs() < 1e-12);
        assert_eq!(mine.overhead_vs(&MsgCounters::new()), None);
    }

    #[test]
    fn addition_is_elementwise() {
        let mut a = MsgCounters::new();
        a.record(MsgClass::Data, 3);
        let mut b = MsgCounters::new();
        b.record(MsgClass::Data, 4);
        b.record(MsgClass::Heartbeat, 0);
        let sum = a + b;
        assert_eq!(sum.elements(MsgClass::Data), 7);
        assert_eq!(sum.messages(MsgClass::Data), 2);
        assert_eq!(sum.messages(MsgClass::Heartbeat), 1);
    }

    #[test]
    fn display_shows_nonzero_classes() {
        let mut c = MsgCounters::new();
        c.record(MsgClass::Data, 2);
        let s = c.to_string();
        assert!(s.contains("data=2el/1msg"));
        assert!(!s.contains("heartbeat"));
        assert_eq!(MsgCounters::new().to_string(), "(empty)");
    }
}
