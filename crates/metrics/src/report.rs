//! Plain-text result tables for the figure harnesses.
//!
//! Every experiment binary prints its figure's series as an aligned table
//! (and optionally CSV), so runs can be diffed against EXPERIMENTS.md.

use std::fmt;

/// A simple aligned text table.
///
/// ```
/// use sps_metrics::Table;
///
/// let mut t = Table::new(vec!["rate", "delay_ms"]);
/// t.row(vec!["1000".into(), "9.13".into()]);
/// t.row(vec!["25000".into(), "11.82".into()]);
/// let text = t.to_string();
/// assert!(text.contains("rate"));
/// assert!(text.contains("25000"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as comma-separated values (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a millisecond value with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// Formats a ratio as a percentage.
pub fn fmt_pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

/// Formats a large count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100000".into(), "3".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().collect::<Vec<_>>()[0], '-');
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new(vec!["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(123.456), "123");
        assert_eq!(fmt_ms(12.345), "12.35");
        assert_eq!(fmt_ms(0.12345), "0.1235");
        assert_eq!(fmt_pct(0.1234), "12.3%");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(123), "123");
        assert_eq!(fmt_count(1000), "1,000");
    }
}
