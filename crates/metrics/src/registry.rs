//! A sim-time metrics registry: counters, gauges, and log-linear
//! histograms keyed by `(component, machine, pe)` scopes, with
//! deterministic scrape snapshots exportable as JSONL or CSV.
//!
//! The registry is pure bookkeeping: it never draws randomness, never
//! schedules anything, and iterates in a fixed `BTreeMap` order, so two
//! identical runs scrape byte-identical time-series. The simulator owns a
//! registry only when metrics collection was requested; the disabled path
//! costs one branch per would-be update.
//!
//! Times are plain nanosecond integers so this crate stays dependency-free
//! (the simulator passes `SimTime::as_nanos()`).

use std::collections::BTreeMap;
use std::io::{self, Write};

/// The identity of a metric family: which component reported it, and the
/// machine/PE it is about (either may be absent for cluster-wide metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Scope {
    /// Reporting component, e.g. `"data_plane"`, `"recovery"`, `"network"`.
    pub component: &'static str,
    /// Machine index the metric is about, if machine-scoped.
    pub machine: Option<u32>,
    /// PE id the metric is about, if PE-scoped.
    pub pe: Option<u32>,
}

impl Scope {
    /// A cluster-wide scope.
    pub fn global(component: &'static str) -> Scope {
        Scope {
            component,
            machine: None,
            pe: None,
        }
    }

    /// A machine-scoped metric.
    pub fn machine(component: &'static str, machine: u32) -> Scope {
        Scope {
            component,
            machine: Some(machine),
            pe: None,
        }
    }

    /// A PE-scoped metric (the hosting machine is part of the identity).
    pub fn pe(component: &'static str, machine: u32, pe: u32) -> Scope {
        Scope {
            component,
            machine: Some(machine),
            pe: Some(pe),
        }
    }
}

/// Linear sub-buckets per power of two in [`LogLinearHistogram`]: bucket
/// widths grow with magnitude while keeping ~9% relative resolution.
pub const HISTOGRAM_SUBBUCKETS: usize = 8;

/// A log-linear histogram of non-negative values: one underflow bucket for
/// values below 1, then [`HISTOGRAM_SUBBUCKETS`] linear buckets per power
/// of two. Recording is integer-only bookkeeping and allocation-free after
/// the bucket vector reaches its high-water length.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogLinearHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl LogLinearHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: f64) -> usize {
        if value < 1.0 {
            return 0;
        }
        let exp = value.log2().floor();
        let base = 2f64.powf(exp);
        let sub = (((value / base) - 1.0) * HISTOGRAM_SUBBUCKETS as f64) as usize;
        1 + (exp as usize) * HISTOGRAM_SUBBUCKETS + sub.min(HISTOGRAM_SUBBUCKETS - 1)
    }

    /// The lower bound of the bucket at `index` (inverse of the indexing).
    fn bucket_floor(index: usize) -> f64 {
        if index == 0 {
            return 0.0;
        }
        let i = index - 1;
        let exp = i / HISTOGRAM_SUBBUCKETS;
        let sub = i % HISTOGRAM_SUBBUCKETS;
        2f64.powi(exp as i32) * (1.0 + sub as f64 / HISTOGRAM_SUBBUCKETS as f64)
    }

    /// Records one observation (negative values clamp to zero).
    pub fn observe(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        let idx = Self::bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observation seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The lower bound of the bucket containing quantile `q` (0..=1).
    /// Resolution is the bucket width (~12.5% relative); exact enough for
    /// tail summaries without retaining samples.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        Self::bucket_floor(self.buckets.len().saturating_sub(1))
    }

    /// Raw per-bucket observation counts (index 0 is the underflow bucket).
    /// Windowed consumers diff these between cumulative snapshots.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Folds another histogram into this one (bucket-wise sum). Used to
    /// aggregate the same metric across scopes before windowed queries.
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The observations recorded since `earlier` (an older cumulative
    /// snapshot of the *same* histogram), as a standalone histogram.
    /// Bucket counts and sums subtract saturating, so a mismatched pair
    /// degrades to an empty window instead of panicking. The returned
    /// `max` is the cumulative high-water mark (per-window maxima are not
    /// recoverable from cumulative snapshots).
    pub fn delta_since(&self, earlier: &LogLinearHistogram) -> LogLinearHistogram {
        let mut buckets = self.buckets.clone();
        for (i, b) in buckets.iter_mut().enumerate() {
            let prev = earlier.buckets.get(i).copied().unwrap_or(0);
            *b = b.saturating_sub(prev);
        }
        LogLinearHistogram {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: (self.sum - earlier.sum).max(0.0),
            max: self.max,
        }
    }

    /// Quantile of the observations recorded since `earlier` — the
    /// windowed tail statistic the SLO monitors evaluate each scrape.
    pub fn quantile_between(&self, earlier: &LogLinearHistogram, q: f64) -> f64 {
        self.delta_since(earlier).quantile(q)
    }
}

/// One metric value captured by a scrape.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ScrapedValue {
    Counter(u64),
    Gauge(f64),
    /// `(count, sum, p50, p99, max)` summary of a histogram.
    Histogram(u64, f64, f64, f64, f64),
}

impl ScrapedValue {
    fn kind(&self) -> &'static str {
        match self {
            ScrapedValue::Counter(_) => "counter",
            ScrapedValue::Gauge(_) => "gauge",
            ScrapedValue::Histogram(..) => "histogram",
        }
    }
}

/// One scrape: every registered metric's value at one sim-time instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Scrape {
    /// Sim-time of the scrape, in nanoseconds.
    pub t_nanos: u64,
    rows: Vec<(Scope, &'static str, ScrapedValue)>,
}

/// The registry: every counter, gauge, and histogram of one run, plus the
/// scrape history. Iteration order is the `BTreeMap` key order, so exports
/// are deterministic.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<(Scope, &'static str), u64>,
    gauges: BTreeMap<(Scope, &'static str), f64>,
    histograms: BTreeMap<(Scope, &'static str), LogLinearHistogram>,
    scrapes: Vec<Scrape>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to a counter (creating it at zero).
    pub fn inc(&mut self, scope: Scope, name: &'static str, by: u64) {
        *self.counters.entry((scope, name)).or_insert(0) += by;
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&mut self, scope: Scope, name: &'static str, value: f64) {
        self.gauges.insert((scope, name), value);
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, scope: Scope, name: &'static str, value: f64) {
        self.histograms
            .entry((scope, name))
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, scope: Scope, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|((s, n), _)| *s == scope && *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum of one counter name across all scopes of a component.
    pub fn counter_total(&self, component: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((s, n), _)| s.component == component && *n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, scope: Scope, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|((s, n), _)| *s == scope && *n == name)
            .map(|(_, v)| *v)
    }

    /// One histogram, if any observation was recorded.
    pub fn histogram(&self, scope: Scope, name: &str) -> Option<&LogLinearHistogram> {
        self.histograms
            .iter()
            .find(|((s, n), _)| *s == scope && *n == name)
            .map(|(_, h)| h)
    }

    /// Counters iterated in deterministic order.
    pub fn counters(&self) -> impl Iterator<Item = (Scope, &'static str, u64)> + '_ {
        self.counters.iter().map(|(&(s, n), &v)| (s, n, v))
    }

    /// Gauges iterated in deterministic order.
    pub fn gauges(&self) -> impl Iterator<Item = (Scope, &'static str, f64)> + '_ {
        self.gauges.iter().map(|(&(s, n), &v)| (s, n, v))
    }

    /// Histograms iterated in deterministic order.
    pub fn histograms(
        &self,
    ) -> impl Iterator<Item = (Scope, &'static str, &LogLinearHistogram)> + '_ {
        self.histograms.iter().map(|(&(s, n), h)| (s, n, h))
    }

    /// One histogram aggregated (bucket-wise merged) across every scope of
    /// `component` that records `name`. `None` when no scope does.
    pub fn merged_histogram(&self, component: &str, name: &str) -> Option<LogLinearHistogram> {
        let mut merged: Option<LogLinearHistogram> = None;
        for ((s, n), h) in &self.histograms {
            if s.component == component && *n == name {
                merged.get_or_insert_with(LogLinearHistogram::new).merge(h);
            }
        }
        merged
    }

    /// Maximum of one gauge name across all scopes of a component.
    pub fn gauge_max(&self, component: &str, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .filter(|((s, n), _)| s.component == component && *n == name)
            .map(|(_, v)| *v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Snapshots every metric at sim-time `t_nanos` and appends the scrape
    /// to the history. Scraping mutates only the registry itself.
    pub fn scrape(&mut self, t_nanos: u64) {
        let mut rows =
            Vec::with_capacity(self.counters.len() + self.gauges.len() + self.histograms.len());
        for (&(scope, name), &v) in &self.counters {
            rows.push((scope, name, ScrapedValue::Counter(v)));
        }
        for (&(scope, name), &v) in &self.gauges {
            rows.push((scope, name, ScrapedValue::Gauge(v)));
        }
        for (&(scope, name), h) in &self.histograms {
            rows.push((
                scope,
                name,
                ScrapedValue::Histogram(
                    h.count(),
                    h.sum(),
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.max(),
                ),
            ));
        }
        self.scrapes.push(Scrape { t_nanos, rows });
    }

    /// Number of scrapes recorded.
    pub fn scrape_count(&self) -> usize {
        self.scrapes.len()
    }

    /// Writes the scrape history as JSON Lines: one object per metric per
    /// scrape, keys in fixed order, floats at fixed precision — identical
    /// runs export byte-identical dumps.
    pub fn export_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        for s in &self.scrapes {
            for (scope, name, v) in &s.rows {
                write!(
                    w,
                    "{{\"t\":{},\"component\":\"{}\",\"machine\":{},\"pe\":{},\"name\":\"{}\",\"kind\":\"{}\"",
                    s.t_nanos,
                    scope.component,
                    opt_u32(scope.machine),
                    opt_u32(scope.pe),
                    name,
                    v.kind(),
                )?;
                match v {
                    ScrapedValue::Counter(c) => write!(w, ",\"value\":{c}")?,
                    ScrapedValue::Gauge(g) => write!(w, ",\"value\":{}", fmt_f64(*g))?,
                    ScrapedValue::Histogram(count, sum, p50, p99, max) => write!(
                        w,
                        ",\"count\":{count},\"sum\":{},\"p50\":{},\"p99\":{},\"max\":{}",
                        fmt_f64(*sum),
                        fmt_f64(*p50),
                        fmt_f64(*p99),
                        fmt_f64(*max),
                    )?,
                }
                writeln!(w, "}}")?;
            }
        }
        Ok(())
    }

    /// Writes the scrape history as CSV (`t_nanos,component,machine,pe,
    /// name,kind,value,count,sum,p50,p99,max`), same determinism guarantees
    /// as [`export_jsonl`](Self::export_jsonl).
    pub fn export_csv(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(
            w,
            "t_nanos,component,machine,pe,name,kind,value,count,sum,p50,p99,max"
        )?;
        for s in &self.scrapes {
            for (scope, name, v) in &s.rows {
                let m = scope.machine.map(|m| m.to_string()).unwrap_or_default();
                let p = scope.pe.map(|p| p.to_string()).unwrap_or_default();
                match v {
                    ScrapedValue::Counter(c) => writeln!(
                        w,
                        "{},{},{m},{p},{name},counter,{c},,,,,",
                        s.t_nanos, scope.component
                    )?,
                    ScrapedValue::Gauge(g) => writeln!(
                        w,
                        "{},{},{m},{p},{name},gauge,{},,,,,",
                        s.t_nanos,
                        scope.component,
                        fmt_f64(*g)
                    )?,
                    ScrapedValue::Histogram(count, sum, p50, p99, max) => writeln!(
                        w,
                        "{},{},{m},{p},{name},histogram,,{count},{},{},{},{}",
                        s.t_nanos,
                        scope.component,
                        fmt_f64(*sum),
                        fmt_f64(*p50),
                        fmt_f64(*p99),
                        fmt_f64(*max),
                    )?,
                }
            }
        }
        Ok(())
    }

    /// The JSONL dump as a string (used by determinism tests).
    pub fn to_jsonl_string(&self) -> String {
        let mut out = Vec::new();
        self.export_jsonl(&mut out).expect("write to Vec");
        String::from_utf8(out).expect("JSONL is ASCII")
    }
}

fn opt_u32(v: Option<u32>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Deterministic fixed-precision float formatting (mirrors the trace
/// layer's JSONL encoding; never exponent notation, never locale-shaped).
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        String::from("null")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_scope() {
        let mut r = Registry::new();
        let a = Scope::machine("data_plane", 1);
        let b = Scope::machine("data_plane", 2);
        r.inc(a, "elements_sent", 3);
        r.inc(a, "elements_sent", 2);
        r.inc(b, "elements_sent", 7);
        assert_eq!(r.counter(a, "elements_sent"), 5);
        assert_eq!(r.counter(b, "elements_sent"), 7);
        assert_eq!(r.counter_total("data_plane", "elements_sent"), 12);
        assert_eq!(r.counter(Scope::global("x"), "elements_sent"), 0);
    }

    #[test]
    fn histogram_buckets_are_log_linear_and_quantiles_bounded() {
        let mut h = LogLinearHistogram::new();
        for v in [0.2, 1.0, 1.5, 3.0, 9.0, 100.0, 100.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert!((h.sum() - 314.7).abs() < 1e-9);
        assert_eq!(h.max(), 100.0);
        let p99 = h.quantile(0.99);
        assert!(p99 <= 100.0 && p99 > 50.0, "p99 bucket floor: {p99}");
        let p25 = h.quantile(0.25);
        assert!(p25 <= 1.5, "p25 bucket floor: {p25}");
        // A value's bucket floor is never above the value itself.
        for v in [1.0, 1.9, 2.0, 7.3, 1e6] {
            let floor = LogLinearHistogram::bucket_floor(LogLinearHistogram::bucket_index(v));
            assert!(floor <= v && v < floor * (1.0 + 2.0 / HISTOGRAM_SUBBUCKETS as f64));
        }
    }

    #[test]
    fn histogram_windows_diff_cumulative_snapshots() {
        let mut h = LogLinearHistogram::new();
        for v in [2.0, 2.0, 3.0] {
            h.observe(v);
        }
        let snapshot = h.clone();
        for v in [100.0, 100.0, 120.0, 150.0] {
            h.observe(v);
        }
        let w = h.delta_since(&snapshot);
        assert_eq!(w.count(), 4);
        assert!((w.sum() - 470.0).abs() < 1e-9);
        // The window contains only the large values: its median sits in the
        // 100s, not at the cumulative median (which would be ~3).
        assert!(w.quantile(0.5) > 50.0, "windowed p50: {}", w.quantile(0.5));
        assert!(h.quantile_between(&snapshot, 0.5) > 50.0);
        // Degenerate pair (newer snapshot as "earlier") stays empty.
        assert_eq!(h.delta_since(&h).count(), 0);
    }

    #[test]
    fn merged_histogram_sums_scopes() {
        let mut r = Registry::new();
        r.observe(Scope::pe("data_plane", 0, 1), "proc_ms", 1.0);
        r.observe(Scope::pe("data_plane", 1, 2), "proc_ms", 8.0);
        let m = r.merged_histogram("data_plane", "proc_ms").unwrap();
        assert_eq!(m.count(), 2);
        assert!((m.sum() - 9.0).abs() < 1e-9);
        assert!(r.merged_histogram("data_plane", "missing").is_none());
        assert_eq!(r.histograms().count(), 2);
    }

    #[test]
    fn gauge_max_spans_scopes() {
        let mut r = Registry::new();
        r.set_gauge(Scope::machine("cluster", 0), "run_queue", 2.0);
        r.set_gauge(Scope::machine("cluster", 1), "run_queue", 7.0);
        assert_eq!(r.gauge_max("cluster", "run_queue"), Some(7.0));
        assert_eq!(r.gauge_max("cluster", "absent"), None);
        assert_eq!(r.gauges().count(), 2);
    }

    #[test]
    fn scrapes_export_deterministically() {
        let build = || {
            let mut r = Registry::new();
            r.inc(Scope::global("recovery"), "detected", 1);
            r.set_gauge(Scope::machine("cluster", 0), "cpu_load", 1.0 / 3.0);
            r.observe(Scope::pe("data_plane", 1, 4), "e2e_delay_ms", 12.5);
            r.scrape(1_000_000);
            r.inc(Scope::global("recovery"), "detected", 1);
            r.scrape(2_000_000);
            r
        };
        let a = build().to_jsonl_string();
        let b = build().to_jsonl_string();
        assert_eq!(a, b, "identical runs export byte-identical dumps");
        assert_eq!(a.lines().count(), 6, "3 metrics x 2 scrapes");
        assert!(a.contains("\"kind\":\"gauge\""));
        assert!(a.contains("\"value\":0.333333"));
        let first = a.lines().next().unwrap();
        assert!(first.starts_with("{\"t\":1000000,"), "{first}");
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut r = Registry::new();
        r.inc(Scope::global("recovery"), "detected", 2);
        r.scrape(5);
        let mut out = Vec::new();
        r.export_csv(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        let mut lines = s.lines();
        assert!(lines.next().unwrap().starts_with("t_nanos,component"));
        assert_eq!(
            lines.next().unwrap(),
            "5,recovery,,,detected,counter,2,,,,,"
        );
    }
}
