//! End-to-end latency recording for data elements.
//!
//! The paper's headline metric (Figs 4–5) is the average end-to-end delay of
//! data elements from source to sink. [`LatencyRecorder`] keeps both an
//! online summary and an optional time series of `(arrival time,
//! latency)` pairs so that delays *during* failure windows can be separated
//! from normal-period delays (the "8-fold increase" observation in §V-B).

use crate::cdf::Cdf;
use crate::stats::OnlineStats;

/// Records per-element end-to-end latencies, in milliseconds.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    stats: OnlineStats,
    cdf: Cdf,
    series: Vec<(f64, f64)>,
    keep_series: bool,
}

impl LatencyRecorder {
    /// Creates a recorder keeping only aggregate statistics.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Creates a recorder that also keeps the full `(arrival_s, latency_ms)`
    /// time series for windowed analysis.
    pub fn with_series() -> Self {
        LatencyRecorder {
            keep_series: true,
            ..LatencyRecorder::default()
        }
    }

    /// Records one element's latency, with its sink-arrival time.
    pub fn record(&mut self, arrival_s: f64, latency_ms: f64) {
        self.stats.record(latency_ms);
        self.cdf.record(latency_ms);
        if self.keep_series {
            self.series.push((arrival_s, latency_ms));
        }
    }

    /// Number of elements recorded.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.stats.mean()
    }

    /// Latency quantile in milliseconds (nearest rank), or `None` if empty.
    pub fn quantile_ms(&mut self, q: f64) -> Option<f64> {
        self.cdf.quantile(q)
    }

    /// Maximum latency in milliseconds, or `None` if empty.
    pub fn max_ms(&self) -> Option<f64> {
        self.stats.max()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Mean latency of elements arriving inside any of the given windows
    /// versus outside them: `(inside_mean, outside_mean)`. Windows are
    /// `(start_s, end_s)` pairs, half-open. Requires a series recorder.
    ///
    /// Returns zero means for empty partitions.
    pub fn mean_inside_outside(&self, windows: &[(f64, f64)]) -> (f64, f64) {
        let mut inside = OnlineStats::new();
        let mut outside = OnlineStats::new();
        for &(t, lat) in &self.series {
            if windows.iter().any(|&(s, e)| s <= t && t < e) {
                inside.record(lat);
            } else {
                outside.record(lat);
            }
        }
        (inside.mean(), outside.mean())
    }

    /// The recorded `(arrival_s, latency_ms)` series (empty unless created
    /// via [`LatencyRecorder::with_series`]).
    pub fn series(&self) -> &[(f64, f64)] {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_track_records() {
        let mut r = LatencyRecorder::new();
        r.record(0.0, 10.0);
        r.record(1.0, 20.0);
        r.record(2.0, 30.0);
        assert_eq!(r.count(), 3);
        assert_eq!(r.mean_ms(), 20.0);
        assert_eq!(r.max_ms(), Some(30.0));
        assert_eq!(r.quantile_ms(1.0), Some(30.0));
        assert!(r.series().is_empty(), "series not kept by default");
    }

    #[test]
    fn inside_outside_partition() {
        let mut r = LatencyRecorder::with_series();
        // Failure window [10, 20): slow elements inside.
        r.record(5.0, 10.0);
        r.record(12.0, 80.0);
        r.record(15.0, 120.0);
        r.record(25.0, 10.0);
        let (inside, outside) = r.mean_inside_outside(&[(10.0, 20.0)]);
        assert_eq!(inside, 100.0);
        assert_eq!(outside, 10.0);
    }

    #[test]
    fn inside_outside_handles_empty_partitions() {
        let mut r = LatencyRecorder::with_series();
        r.record(5.0, 10.0);
        let (inside, outside) = r.mean_inside_outside(&[(100.0, 200.0)]);
        assert_eq!(inside, 0.0);
        assert_eq!(outside, 10.0);
    }

    #[test]
    fn window_boundaries_are_half_open() {
        let mut r = LatencyRecorder::with_series();
        r.record(10.0, 1.0);
        r.record(20.0, 2.0);
        let (inside, outside) = r.mean_inside_outside(&[(10.0, 20.0)]);
        assert_eq!(inside, 1.0);
        assert_eq!(outside, 2.0);
    }
}
