//! # sps-metrics — measurement toolkit for the HA experiments
//!
//! Everything the paper's evaluation section measures, as reusable
//! collectors:
//!
//! * [`OnlineStats`] — streaming mean/variance/extrema;
//! * [`Cdf`] — empirical distributions and CDF curves (Figs 2–3);
//! * [`LatencyRecorder`] — per-element end-to-end delay, with
//!   inside/outside-failure-window partitioning (Figs 4–5, the "8-fold"
//!   observation);
//! * [`MsgCounters`] / [`MsgClass`] — message overhead in element units
//!   (Figs 6, 10, 11);
//! * [`RecoveryTimeline`] / [`RecoveryDecomposition`] — recovery-time
//!   decomposition into detection / redeploy-or-resume / retransmit phases
//!   (Figs 7–9);
//! * [`Table`] and formatting helpers — the harnesses' printed output;
//! * [`Registry`] — a sim-time metrics registry: counters, gauges, and
//!   log-linear histograms keyed by `(component, machine, pe)` [`Scope`]s,
//!   scraped on a deterministic cadence into JSONL/CSV time-series.
//!
//! This crate is dependency-free and knows nothing about the simulator, so
//! any component can record into it.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cdf;
mod counters;
mod latency;
mod recovery;
pub mod registry;
mod report;
mod stats;

pub use cdf::Cdf;
pub use counters::{MsgClass, MsgCounters};
pub use latency::LatencyRecorder;
pub use recovery::{RecoveryDecomposition, RecoveryKind, RecoveryTimeline};
pub use registry::{LogLinearHistogram, Registry, Scope};
pub use report::{fmt_count, fmt_ms, fmt_pct, Table};
pub use stats::OnlineStats;
