//! Recovery-time decomposition, as plotted in the paper's Figs 7–9.
//!
//! The paper defines recovery time as "the time from the inception of a
//! transient failure to the producing of the first new output data after the
//! switch", decomposed into failure detection, job redeployment (passive
//! standby) or job resume (hybrid), and data retransmission / reprocessing.

use std::fmt;

use crate::stats::OnlineStats;

/// Which standby design produced a recovery timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// Passive standby: the secondary is deployed on demand after detection.
    PassiveStandby,
    /// Hybrid: a pre-deployed suspended secondary is resumed.
    Hybrid,
}

/// Milestones of one recovery, in milliseconds since the failure inception.
///
/// Milestones are cumulative offsets: `detected <= ready <= first_output`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryTimeline {
    /// Which design recovered.
    pub kind: RecoveryKind,
    /// Failure inception → failure declared.
    pub detected_ms: f64,
    /// Failure inception → secondary deployed (PS) or resumed (Hybrid) and
    /// connected.
    pub ready_ms: f64,
    /// Failure inception → first new output element produced downstream.
    pub first_output_ms: f64,
}

impl RecoveryTimeline {
    /// Creates a timeline, validating milestone ordering.
    ///
    /// # Panics
    ///
    /// Panics if the milestones are not non-decreasing or are negative/NaN.
    pub fn new(kind: RecoveryKind, detected_ms: f64, ready_ms: f64, first_output_ms: f64) -> Self {
        assert!(
            detected_ms >= 0.0 && detected_ms <= ready_ms && ready_ms <= first_output_ms,
            "milestones must satisfy 0 <= detected ({detected_ms}) <= ready ({ready_ms}) \
             <= first_output ({first_output_ms})"
        );
        RecoveryTimeline {
            kind,
            detected_ms,
            ready_ms,
            first_output_ms,
        }
    }

    /// The detection phase length (ms).
    pub fn detection_ms(&self) -> f64 {
        self.detected_ms
    }

    /// The redeployment (PS) or resume (Hybrid) phase length (ms).
    pub fn deploy_or_resume_ms(&self) -> f64 {
        self.ready_ms - self.detected_ms
    }

    /// The retransmission / reprocessing phase length (ms).
    pub fn retrans_reprocess_ms(&self) -> f64 {
        self.first_output_ms - self.ready_ms
    }

    /// Total recovery time (ms).
    pub fn total_ms(&self) -> f64 {
        self.first_output_ms
    }
}

/// Mean decomposition across many recoveries of the same kind.
#[derive(Debug, Clone)]
pub struct RecoveryDecomposition {
    kind: RecoveryKind,
    detection: OnlineStats,
    deploy_or_resume: OnlineStats,
    retrans: OnlineStats,
}

impl RecoveryDecomposition {
    /// Creates an empty decomposition for recoveries of `kind`.
    pub fn new(kind: RecoveryKind) -> Self {
        RecoveryDecomposition {
            kind,
            detection: OnlineStats::new(),
            deploy_or_resume: OnlineStats::new(),
            retrans: OnlineStats::new(),
        }
    }

    /// Adds one recovery.
    ///
    /// # Panics
    ///
    /// Panics if `timeline.kind` differs from this decomposition's kind.
    pub fn record(&mut self, timeline: &RecoveryTimeline) {
        assert_eq!(
            timeline.kind, self.kind,
            "cannot mix recovery kinds in one decomposition"
        );
        self.detection.record(timeline.detection_ms());
        self.deploy_or_resume.record(timeline.deploy_or_resume_ms());
        self.retrans.record(timeline.retrans_reprocess_ms());
    }

    /// The design this decomposition describes.
    pub fn kind(&self) -> RecoveryKind {
        self.kind
    }

    /// Number of recoveries recorded.
    pub fn count(&self) -> u64 {
        self.detection.count()
    }

    /// Mean detection time (ms).
    pub fn mean_detection_ms(&self) -> f64 {
        self.detection.mean()
    }

    /// Mean redeployment/resume time (ms).
    pub fn mean_deploy_or_resume_ms(&self) -> f64 {
        self.deploy_or_resume.mean()
    }

    /// Mean retransmission/reprocessing time (ms).
    pub fn mean_retrans_ms(&self) -> f64 {
        self.retrans.mean()
    }

    /// Mean total recovery time (ms).
    pub fn mean_total_ms(&self) -> f64 {
        self.mean_detection_ms() + self.mean_deploy_or_resume_ms() + self.mean_retrans_ms()
    }
}

impl fmt::Display for RecoveryDecomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.kind {
            RecoveryKind::PassiveStandby => "redeploy",
            RecoveryKind::Hybrid => "resume",
        };
        write!(
            f,
            "n={} detect={:.1}ms {}={:.1}ms retrans/reproc={:.1}ms total={:.1}ms",
            self.count(),
            self.mean_detection_ms(),
            stage,
            self.mean_deploy_or_resume_ms(),
            self.mean_retrans_ms(),
            self.mean_total_ms()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_decomposes() {
        let t = RecoveryTimeline::new(RecoveryKind::Hybrid, 100.0, 150.0, 230.0);
        assert_eq!(t.detection_ms(), 100.0);
        assert_eq!(t.deploy_or_resume_ms(), 50.0);
        assert_eq!(t.retrans_reprocess_ms(), 80.0);
        assert_eq!(t.total_ms(), 230.0);
    }

    #[test]
    #[should_panic(expected = "milestones")]
    fn unordered_milestones_rejected() {
        RecoveryTimeline::new(RecoveryKind::Hybrid, 100.0, 50.0, 230.0);
    }

    #[test]
    fn decomposition_averages() {
        let mut d = RecoveryDecomposition::new(RecoveryKind::PassiveStandby);
        d.record(&RecoveryTimeline::new(
            RecoveryKind::PassiveStandby,
            300.0,
            500.0,
            600.0,
        ));
        d.record(&RecoveryTimeline::new(
            RecoveryKind::PassiveStandby,
            100.0,
            300.0,
            400.0,
        ));
        assert_eq!(d.count(), 2);
        assert_eq!(d.mean_detection_ms(), 200.0);
        assert_eq!(d.mean_deploy_or_resume_ms(), 200.0);
        assert_eq!(d.mean_retrans_ms(), 100.0);
        assert_eq!(d.mean_total_ms(), 500.0);
    }

    #[test]
    #[should_panic(expected = "mix")]
    fn kind_mismatch_rejected() {
        let mut d = RecoveryDecomposition::new(RecoveryKind::Hybrid);
        d.record(&RecoveryTimeline::new(
            RecoveryKind::PassiveStandby,
            1.0,
            2.0,
            3.0,
        ));
    }

    #[test]
    fn display_names_the_middle_stage() {
        let d = RecoveryDecomposition::new(RecoveryKind::Hybrid);
        assert!(d.to_string().contains("resume"));
        let d = RecoveryDecomposition::new(RecoveryKind::PassiveStandby);
        assert!(d.to_string().contains("redeploy"));
    }
}
