//! End-to-end benchmarks: simulator throughput for one second of the
//! paper's evaluation job under each HA mode, and one full hybrid
//! switch-over/rollback cycle. Self-contained harness (`harness = false`)
//! timed with `std::time::Instant`.

use std::hint::black_box;

use sps_bench::timing::bench;
use sps_engine::SubjobId;
use sps_ha::{HaMode, HaSimulation};
use sps_sim::{SimDuration, SimTime};
use sps_workloads::{eval_chain_job, single_failure};

fn bench_modes() {
    for mode in HaMode::ALL {
        bench(&format!("simulate_1s_at_1k_els/{mode}"), 1_000, || {
            let mut sim = HaSimulation::builder(eval_chain_job())
                .mode(mode)
                .source_rate(1_000.0)
                .seed(1)
                .build();
            sim.run_for(SimDuration::from_secs(1));
            black_box(sim.report().sink_accepted);
        });
    }
}

fn bench_switchover_cycle() {
    bench("hybrid_cycle/failure_switch_rollback", 1, || {
        let mut sim = HaSimulation::builder(eval_chain_job())
            .mode(HaMode::None)
            .subjob_mode(SubjobId(1), HaMode::Hybrid)
            .source_rate(1_000.0)
            .seed(2)
            .build();
        sim.inject_spike_windows(
            sps_cluster::MachineId(1),
            &single_failure(SimTime::from_millis(500), SimDuration::from_secs(1)),
        );
        sim.run_for(SimDuration::from_secs(3));
        black_box(sim.world().ha_events().len());
    });
}

fn main() {
    bench_modes();
    bench_switchover_cycle();
}
