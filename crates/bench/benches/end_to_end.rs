//! Criterion end-to-end benchmarks: simulator throughput for one second of
//! the paper's evaluation job under each HA mode, and one full hybrid
//! switch-over/rollback cycle.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sps_engine::SubjobId;
use sps_ha::{HaMode, HaSimulation};
use sps_sim::{SimDuration, SimTime};
use sps_workloads::{eval_chain_job, single_failure};

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_1s_at_1k_els");
    g.sample_size(10);
    for mode in HaMode::ALL {
        g.bench_function(mode.to_string(), |b| {
            b.iter(|| {
                let mut sim = HaSimulation::builder(eval_chain_job())
                    .mode(mode)
                    .source_rate(1_000.0)
                    .seed(1)
                    .build();
                sim.run_for(SimDuration::from_secs(1));
                black_box(sim.report().sink_accepted)
            })
        });
    }
    g.finish();
}

fn bench_switchover_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("hybrid_cycle");
    g.sample_size(10);
    g.bench_function("failure_switch_rollback", |b| {
        b.iter(|| {
            let mut sim = HaSimulation::builder(eval_chain_job())
                .mode(HaMode::None)
                .subjob_mode(SubjobId(1), HaMode::Hybrid)
                .source_rate(1_000.0)
                .seed(2)
                .build();
            sim.inject_spike_windows(
                sps_cluster::MachineId(1),
                &single_failure(SimTime::from_millis(500), SimDuration::from_secs(1)),
            );
            sim.run_for(SimDuration::from_secs(3));
            black_box(sim.world().ha_events().len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_modes, bench_switchover_cycle);
criterion_main!(benches);
