//! Micro-benchmarks for the hot data structures: the event queue, the
//! retaining/deduplicating stream queues, the processor-sharing machine,
//! and checkpoint snapshot/restore. Self-contained harness (`harness =
//! false`): each case is warmed up, then timed over a fixed number of
//! iterations with `std::time::Instant`.

use std::hint::black_box;

use sps_bench::timing::bench;
use sps_cluster::{LoadComponent, Machine, MachineId};
use sps_engine::{
    DataElement, InputQueue, InstanceId, OperatorSpec, OutputQueue, Payload, PeId, PeInstance,
    Replica, StreamId,
};
use sps_sim::{EventQueue, SimTime};

fn elem(seq: u64) -> DataElement {
    DataElement {
        stream: StreamId(0),
        seq,
        created_at: SimTime::ZERO,
        key: seq % 16,
        value: seq as f64,
        size_bytes: 256,
    }
}

fn bench_event_queue() {
    bench("event_queue/push_pop_10k", 10_000, || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            // Pseudo-random times exercise heap churn.
            let t = (i * 2_654_435_761) % 1_000_000;
            q.push(SimTime::from_nanos(t), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        black_box(acc);
    });
}

fn bench_output_queue() {
    // One scratch buffer reused across every drain, like the dispatch hot
    // path — the bench then measures the queue, not Vec growth.
    let mut scratch = Vec::new();
    bench("output_queue/produce_drain_ack_10k", 10_000, || {
        let mut q: OutputQueue<u8> = OutputQueue::new(StreamId(0));
        let conn = q.connect(0, true, true);
        for i in 0..10_000u64 {
            q.produce(Payload::new(i, i as f64), SimTime::ZERO);
            if i % 16 == 15 {
                scratch.clear();
                black_box(q.drain_sendable_into(conn, &mut scratch));
                black_box(scratch.len());
                q.register_ack(conn, i - 8);
            }
        }
        black_box(q.retained_len());
    });
}

fn bench_input_queue() {
    bench("input_queue/dedup_two_replicas_10k", 10_000, || {
        let mut q = InputQueue::new();
        q.register_stream(StreamId(0));
        // Two replicas interleaved: every element offered twice.
        for i in 1..=5_000u64 {
            let _ = q.offer(elem(i));
            let _ = q.offer(elem(i));
        }
        while q.take_next().is_some() {}
        black_box(q.duplicates_dropped());
    });
}

fn bench_machine() {
    let mut finished = Vec::new();
    bench("machine/processor_sharing_1k_tasks", 1_000, || {
        let mut m = Machine::new(MachineId(0));
        let mut now = SimTime::ZERO;
        for i in 0..1_000u64 {
            m.set_background(now, LoadComponent::Spike, (i % 10) as f64 / 20.0);
            m.submit(now, 0.000_1, i).unwrap();
            now = m.next_completion().unwrap();
            m.advance(now);
            finished.clear();
            m.collect_finished_into(&mut finished);
            black_box(finished.len());
        }
        black_box(m.work_done());
    });
}

fn bench_checkpoint() {
    let make = || {
        let mut inst = PeInstance::new(
            InstanceId {
                pe: PeId(0),
                replica: Replica::Primary,
            },
            OperatorSpec::synthetic_default(),
            1,
            &[StreamId(1)],
        );
        inst.register_input_stream(0, StreamId(0));
        inst.connect_output(0, sps_engine::Dest::Sink(sps_engine::SinkId(0)), true, true);
        // 200 retained elements in the output queue.
        for i in 1..=200u64 {
            inst.offer(0, elem(i));
            inst.start_next().unwrap();
            inst.finish_inflight(SimTime::ZERO);
        }
        inst
    };
    let inst = make();
    bench("checkpoint/snapshot_200_retained", 1, || {
        black_box(inst.snapshot(SimTime::ZERO));
    });
    let ckpt = inst.snapshot(SimTime::ZERO);
    let mut target = make();
    bench("checkpoint/restore_200_retained", 1, || {
        target.restore(black_box(&ckpt));
    });
}

fn bench_operator() {
    let mut op = OperatorSpec::synthetic_default().build();
    let mut out = sps_engine::Emitter::default();
    bench("operator/synthetic_process_10k", 10_000, || {
        for i in 0..10_000u64 {
            op.process(0, &elem(i), &mut out);
            black_box(out.take());
        }
    });
}

fn main() {
    bench_event_queue();
    bench_output_queue();
    bench_input_queue();
    bench_machine();
    bench_checkpoint();
    bench_operator();
}
