//! Health-engine acceptance tests over the Fig 9–11 hybrid recovery
//! scenario: the built-in recovery SLO monitor must record at least one
//! deterministic breach span whose duration telescopes to the phase log's
//! recovery decomposition, the exported report must be byte-stable across
//! runs, and enabling the engine must not perturb the simulation at all.

use sps_cluster::MachineId;
use sps_ha::{HaMode, HaSimulation};
use sps_observe::{HealthConfig, RECOVERY_MONITOR};
use sps_sim::{SimDuration, SimTime};
use sps_trace::{SharedRecorder, Telemetry};
use sps_workloads::{chain_job_with, single_failure};

/// The Fig 9/10 `run_cycle` scenario (every subjob hybrid, one 5 s
/// transient failure on machine 1) with the health engine attached.
fn recovery_run(seed: u64, health: bool) -> (HaSimulation, SharedRecorder) {
    let recorder = SharedRecorder::default();
    let job = chain_job_with(60e-6, 20, 8, 4);
    let mut builder = HaSimulation::builder(job)
        .mode(HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(seed)
        .tune(|c| c.failstop_miss_threshold = 200)
        .trace_sink(Box::new(recorder.clone()));
    if health {
        builder = builder.health(HealthConfig::default());
    }
    let mut sim = builder.build();
    let failure_at = SimTime::from_secs(3);
    let unavail = SimDuration::from_secs(5);
    sim.inject_spike_windows(MachineId(1), &single_failure(failure_at, unavail));
    sim.run_until(failure_at + unavail + SimDuration::from_secs(4));
    (sim, recorder)
}

#[test]
fn recovery_breach_span_telescopes_to_phase_log() {
    let (sim, recorder) = recovery_run(2010, true);
    let engine = sim.world().health().expect("health engine enabled");
    let recovery = engine
        .monitors()
        .iter()
        .find(|m| m.spec.name == RECOVERY_MONITOR)
        .expect("built-in recovery monitor present");
    let spans = recovery.spans();
    assert!(
        !spans.is_empty(),
        "a multi-second recovery cycle must breach the 200 ms budget"
    );
    for s in spans {
        assert!(s.end_ns.is_some(), "cycle ended inside the run: {s:?}");
    }

    // The breach spans' total duration telescopes to the phase log's
    // per-cycle recovery decomposition: both anchor each cycle at the
    // failure injection that triggered it and close at the terminal
    // recovery phase, so the totals agree exactly.
    let mut telemetry = Telemetry::new();
    recorder.with(|r| telemetry.ingest_all(r.records()));
    let paths = telemetry.recovery_critical_paths();
    assert_eq!(
        spans.len(),
        paths.len(),
        "one breach span per recovery cycle"
    );
    let breach_total_ms: f64 = spans
        .iter()
        .map(|s| (s.end_ns.unwrap() - s.start_ns) as f64 / 1e6)
        .sum();
    let path_total_ms: f64 = paths.iter().map(|p| p.duration_ms()).sum();
    assert!(
        (breach_total_ms - path_total_ms).abs() < 1e-6,
        "breach spans total {breach_total_ms} ms but critical paths total {path_total_ms} ms"
    );

    // The per-cycle recovery spans from the phase log telescope to the
    // same total: their per-phase segments partition each cycle.
    let span_total_ms: f64 = telemetry
        .recovery_spans()
        .iter()
        .map(|s| s.end.saturating_since(s.start).as_millis_f64())
        .sum();
    assert!(
        (breach_total_ms - span_total_ms).abs() < 1e-6,
        "breach spans total {breach_total_ms} ms but recovery spans total {span_total_ms} ms"
    );
}

#[test]
fn health_report_is_byte_stable_across_runs() {
    let (a, _ra) = recovery_run(2010, true);
    let (b, _rb) = recovery_run(2010, true);
    let ja = a.world().health().unwrap().report().to_jsonl_string();
    let jb = b.world().health().unwrap().report().to_jsonl_string();
    assert_eq!(ja, jb, "same seed must reproduce the report byte for byte");
    assert!(ja.contains(RECOVERY_MONITOR));

    let (c, _rc) = recovery_run(7, true);
    let jc = c.world().health().unwrap().report().to_jsonl_string();
    assert_ne!(ja, jc, "a different seed produces a different report");
}

#[test]
fn health_engine_perturbs_nothing() {
    let (mut with, _rw) = recovery_run(2010, true);
    let (mut without, _ro) = recovery_run(2010, false);

    assert!(with.world().health().is_some());
    assert!(without.world().health().is_none());

    // Figure-facing outputs are identical with and without the engine:
    // it only reads the registry and phase log at scrape time.
    assert_eq!(
        with.world().sources()[0].produced(),
        without.world().sources()[0].produced()
    );
    assert_eq!(
        with.world().sinks()[0].accepted(),
        without.world().sinks()[0].accepted()
    );
    assert_eq!(
        with.world().sinks()[0].duplicates_dropped(),
        without.world().sinks()[0].duplicates_dropped()
    );
    assert_eq!(with.world().ha_events(), without.world().ha_events());
    let p99_with = with.world_mut().sinks_mut()[0]
        .latency_mut()
        .quantile_ms(0.99);
    let p99_without = without.world_mut().sinks_mut()[0]
        .latency_mut()
        .quantile_ms(0.99);
    assert_eq!(p99_with, p99_without);
}
