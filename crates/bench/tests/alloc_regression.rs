//! Allocation-regression tests (run with `--features bench`).
//!
//! Registers the counting global allocator and measures heap allocations
//! across a steady-state window of the fig06 workload. The steady-state
//! inner loop (source → PE chain → sink, acks, heartbeats) is expected to
//! run allocation-free; checkpoint capture is the one intentional
//! exception (one spine allocation per captured queue), so the budget is a
//! small constant per checkpoint rather than per event.

#![cfg(feature = "bench")]

use sps_engine::{OutputQueue, Payload, StreamId, SubjobId};
use sps_ha::{HaMode, HaSimulation};
use sps_sim::counting_alloc::{self, CountingAllocator};
use sps_sim::{SimDuration, SimTime};
use sps_workloads::chain_job_with;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The fig06 rate-sweep configuration (§V-B): an 8-PE chain in 4 subjobs,
/// light per-element demand, at 10 K elements/s.
fn fig06_sim(mode: HaMode, ckpt_ms: u64) -> HaSimulation {
    let job = chain_job_with(15e-6, 20, 8, 4);
    let n_subjobs = job.subjob_count();
    let mut builder = HaSimulation::builder(job)
        .mode(mode)
        .source_rate(10_000.0)
        .seed(2010)
        .tune(|c| c.checkpoint_interval = SimDuration::from_millis(ckpt_ms));
    for sj in 0..n_subjobs as u32 {
        builder = builder.subjob_mode(SubjobId(sj), mode);
    }
    builder.build()
}

/// Measures allocations across a window of at least 10 000 events after a
/// one-second warmup, returning (events, allocations).
fn measure_window(sim: &mut HaSimulation) -> (u64, u64) {
    sim.run_until(SimTime::from_secs(1)); // warmup: caches, scratch, chunks
    let e0 = sim.events_processed();
    let a0 = counting_alloc::allocations();
    let mut until = SimTime::from_secs(1);
    while sim.events_processed() - e0 < 10_000 {
        until += SimDuration::from_millis(10);
        sim.run_until(until);
    }
    (
        sim.events_processed() - e0,
        counting_alloc::allocations() - a0,
    )
}

/// The steady-state inner loop of fig06 without checkpointing must not
/// allocate at all: every hop reuses scratch buffers, chunk recycling
/// covers the queues, and the timer wheel's buckets are warm.
#[test]
fn fig06_steady_state_none_mode_is_allocation_free() {
    let mut sim = fig06_sim(HaMode::None, 500);
    let (events, allocs) = measure_window(&mut sim);
    assert!(events >= 10_000);
    assert_eq!(
        allocs, 0,
        "steady-state window of {events} events made {allocs} heap allocations"
    );
}

/// With Hybrid checkpointing every 100 ms, the only allocations allowed in
/// the window are the O(1)-per-capture checkpoint costs (snapshot spines,
/// checkpoint messages), which are bounded per checkpoint — not per event.
#[test]
fn fig06_steady_state_hybrid_allocates_only_per_checkpoint() {
    let mut sim = fig06_sim(HaMode::Hybrid, 100);
    let (events, allocs) = measure_window(&mut sim);
    assert!(events >= 10_000);
    // The window spans at most a few 100 ms checkpoint rounds over 4
    // subjobs × 2 PEs; give each PE capture a generous fixed budget. What
    // matters is the scale: thousands of events, tens of allocations.
    assert!(
        allocs <= 512,
        "hybrid window of {events} events made {allocs} heap allocations \
         (expected a small per-checkpoint constant)"
    );
}

/// Checkpoint capture clones chunk pointers, not elements: the allocation
/// count per capture is identical at depth 100 and depth 10 000.
#[test]
fn checkpoint_capture_allocations_are_depth_independent() {
    let count_for = |depth: usize| {
        let mut q: OutputQueue<()> = OutputQueue::new(StreamId(0));
        // Pad to a chunk boundary so both depths cross the same number of
        // chunk boundaries during the interleaved produces below; without
        // this the counts differ by the (bounded) per-chunk allocation.
        let padded = depth.next_multiple_of(sps_engine::CHUNK_CAP);
        for i in 0..padded {
            q.produce(Payload::new(i as u64, 0.0), SimTime::ZERO);
        }
        // Warm up one capture + produce so copy-on-write steady state holds.
        std::hint::black_box(q.snapshot());
        q.produce(Payload::new(0, 0.0), SimTime::ZERO);
        let a0 = counting_alloc::allocations();
        for i in 0..100u64 {
            std::hint::black_box(q.snapshot());
            q.produce(Payload::new(i, 1.0), SimTime::ZERO);
        }
        counting_alloc::allocations() - a0
    };
    let shallow = count_for(100);
    let deep = count_for(10_000);
    assert_eq!(
        shallow, deep,
        "capture allocations must not scale with queue depth"
    );
}
