//! End-to-end gates for the protocol auditor (`sps-audit`).
//!
//! Three things are locked down here:
//!
//! 1. the fully instrumented hybrid scenario (spike switch-over + rollback,
//!    fail-stop promotion, chaos loss/duplication, reliable control) is
//!    **clean**: zero violations under the strictest expectations, with a
//!    seed-deterministic report;
//! 2. the two test-only protocol mutations (`test_break_sink_dedup`,
//!    `test_skip_standby_reprovision`) each produce a deterministic
//!    violation — the auditor actually fires, it is not a rubber stamp;
//! 3. the **offline** frontend (`sps_audit::replay_dump`, what
//!    `sps-inspect audit` runs) reaches the same verdict as the online
//!    probe, byte for byte, from the flight-recorder dump alone.

use sps_audit::{replay_dump, Auditor};
use sps_cluster::{ChaosPlan, FaultProfile, MachineId, SpikeWindow};
use sps_ha::{HaConfig, HaMode, HaSimulation};
use sps_sim::SimTime;
use sps_trace::SharedRecorder;
use sps_workloads::eval_chain_job;

/// The audit-capture scenario with the online auditor AND a flight
/// recorder attached, plus a config mutation hook for the canaries.
/// Returns `(online_report, online_violations, dump_jsonl)`.
///
/// The recorder is control-plane-only: every audited event kind is
/// control-plane, so the dump replays to the identical report while
/// staying far below the ring capacity (no preamble eviction).
fn audited_run(seed: u64, mutate: impl FnOnce(&mut HaConfig)) -> (String, u64, String) {
    let recorder = SharedRecorder::default().control_plane_only();
    let chaos = ChaosPlan::default()
        .loss_window(
            SimTime::from_millis(2_500),
            SimTime::from_millis(3_500),
            FaultProfile::loss(0.05).with_duplication(0.05),
        )
        .link_window(
            SimTime::from_millis(2_500),
            SimTime::from_millis(3_500),
            MachineId(1),
            MachineId(6),
            FaultProfile::loss(0.5),
        );
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(seed)
        .tune(|c| {
            c.failstop_miss_threshold = 15;
            c.reliable_control = true;
            mutate(c);
        })
        .chaos(chaos)
        .trace_sink(Box::new(recorder.clone()))
        .trace_probe(Box::new(Auditor::new()))
        .audit_expectations(true, true)
        .build();
    sim.inject_spike_windows(
        MachineId(1),
        &[SpikeWindow {
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
            share: 1.0,
        }],
    );
    sim.fail_stop_at(MachineId(1), SimTime::from_secs(4));
    sim.stop_sources_at(SimTime::from_secs(8));
    sim.run_until(SimTime::from_secs(12));
    sim.finish_probes();
    let report = sim.audit_report().expect("auditor installed");
    let violations = sim.audit_violations();
    let mut dump = Vec::new();
    recorder
        .export_jsonl(&mut dump)
        .expect("in-memory JSONL export cannot fail");
    let evicted = recorder.with(|r| r.evicted());
    assert_eq!(evicted, 0, "ring eviction would truncate the replay");
    (
        report,
        violations,
        String::from_utf8(dump).expect("JSONL is UTF-8"),
    )
}

#[test]
fn clean_run_passes_both_frontends_identically() {
    let (report, violations, dump) = audited_run(2010, |_| {});
    assert_eq!(violations, 0, "{report}");
    assert!(report.contains("verdict: PASS"), "{report}");

    let outcome = replay_dump(&dump).expect("clean dump replays");
    assert_eq!(outcome.violations, 0);
    assert_eq!(outcome.recorded_violations, 0);
    assert!(outcome.first.is_none());
    assert_eq!(
        outcome.report, report,
        "offline replay must reproduce the online report byte for byte"
    );
}

#[test]
fn broken_sink_dedup_is_caught_by_both_frontends() {
    let (report, violations, dump) = audited_run(2010, |c| c.test_break_sink_dedup = true);
    // The chaos duplication window re-delivers elements; with receiver
    // dedup broken they are accepted twice, which the exactly-once rule
    // must flag.
    assert!(violations > 0, "canary did not fire:\n{report}");
    assert!(report.contains("verdict: FAIL"), "{report}");
    assert!(
        report.contains("sink_exactly_once"),
        "wrong invariant flagged:\n{report}"
    );

    let outcome = replay_dump(&dump).expect("dump replays");
    assert_eq!(outcome.violations, violations);
    assert_eq!(
        outcome.recorded_violations, violations,
        "the online probe's violation records must be in the dump"
    );
    assert_eq!(
        outcome.report, report,
        "offline replay must reproduce the online report byte for byte"
    );
    let first = outcome.first.expect("a first violation with context");
    assert!(
        first.rendered.contains("sink_exactly_once"),
        "{}",
        first.rendered
    );
    assert!(
        !first.backtrace.is_empty(),
        "first violation should come with a causal backtrace"
    );

    // The canary is deterministic: same seed, same report.
    let (again, _, _) = audited_run(2010, |c| c.test_break_sink_dedup = true);
    assert_eq!(report, again);
}

#[test]
fn skipped_standby_reprovision_is_caught_by_both_frontends() {
    let (report, violations, dump) = audited_run(2010, |c| c.test_skip_standby_reprovision = true);
    // The fail-stop promotes the secondary; with re-provisioning skipped
    // the subjob finishes the run without standby coverage.
    assert!(violations > 0, "canary did not fire:\n{report}");
    assert!(report.contains("verdict: FAIL"), "{report}");
    assert!(
        report.contains("standby_coverage"),
        "wrong invariant flagged:\n{report}"
    );

    let outcome = replay_dump(&dump).expect("dump replays");
    assert_eq!(outcome.violations, violations);
    assert_eq!(
        outcome.report, report,
        "offline replay must reproduce the online report byte for byte"
    );
    let first = outcome.first.expect("a first violation with context");
    assert!(
        first.rendered.contains("standby_coverage"),
        "{}",
        first.rendered
    );

    let (again, _, _) = audited_run(2010, |c| c.test_skip_standby_reprovision = true);
    assert_eq!(report, again);
}
