//! Lineage and critical-path acceptance tests over the Fig 9–11 hybrid
//! recovery scenario: the per-cycle [`RecoveryCriticalPath`] must attribute
//! at least 95% of each recovery span to labelled edges, and the causal
//! hop decomposition must telescope — per-hop components summing exactly
//! to the end-to-end delay of the delivered element.

use sps_cluster::MachineId;
use sps_ha::{HaMode, HaSimulation};
use sps_sim::{SimDuration, SimTime};
use sps_trace::{SharedRecorder, Telemetry};
use sps_workloads::{chain_job_with, single_failure};

/// The Fig 9/10 `run_cycle` scenario with lineage and a trace recorder
/// attached: every subjob hybrid, one 5 s transient failure on machine 1.
fn recovery_run(seed: u64) -> (HaSimulation, SharedRecorder) {
    let recorder = SharedRecorder::default();
    let job = chain_job_with(60e-6, 20, 8, 4);
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(seed)
        .tune(|c| c.failstop_miss_threshold = 200)
        .lineage(true)
        .trace_sink(Box::new(recorder.clone()))
        .build();
    let failure_at = SimTime::from_secs(3);
    let unavail = SimDuration::from_secs(5);
    sim.inject_spike_windows(MachineId(1), &single_failure(failure_at, unavail));
    sim.run_until(failure_at + unavail + SimDuration::from_secs(4));
    (sim, recorder)
}

#[test]
fn critical_path_decomposes_recovery_spans() {
    let (_sim, recorder) = recovery_run(2010);
    let mut telemetry = Telemetry::new();
    recorder.with(|r| telemetry.ingest_all(r.records()));

    let paths = telemetry.recovery_critical_paths();
    assert!(
        !paths.is_empty(),
        "hybrid recovery produced no critical path"
    );
    let labels: Vec<&str> = paths
        .iter()
        .flat_map(|p| p.edges.iter().map(|e| e.label))
        .collect();
    assert!(labels.contains(&"detection"), "labels: {labels:?}");
    assert!(labels.contains(&"switch_over"), "labels: {labels:?}");
    assert!(labels.contains(&"state_read"), "labels: {labels:?}");
    for p in &paths {
        assert!(
            p.coverage() >= 0.95,
            "cycle {} of subjob {} attributes only {:.1}% of its {:.1} ms span",
            p.cycle,
            p.subjob,
            p.coverage() * 100.0,
            p.duration_ms()
        );
        // Edges are causal: each starts where its predecessor ended.
        for w in p.edges.windows(2) {
            assert!(w[1].from >= w[0].to, "out-of-order edges in {p:?}");
        }
    }
}

#[test]
fn hop_decomposition_telescopes_to_end_to_end_delay() {
    let (sim, _recorder) = recovery_run(2010);
    let lineage = sim.world().lineage().expect("lineage enabled");
    let delivered = lineage.delivered();
    assert!(
        delivered.len() > 1_000,
        "too few deliveries: {}",
        delivered.len()
    );

    let mut decomposed = 0usize;
    for &(key, delivered_at) in delivered {
        let (Some(hops), Some(rec)) = (lineage.decompose(key), lineage.record(key)) else {
            continue;
        };
        let Some(recv) = rec.recv_at else {
            continue;
        };
        decomposed += 1;
        // Acyclic chain rooted at a source emit.
        assert!(!hops.is_empty());
        // Per-hop components telescope exactly: their sum is the element's
        // journey from origin emission to sink arrival (acceptance can be
        // later when an out-of-order arrival waited for a gap fill).
        let total: f64 = hops.iter().map(|h| h.total_ms()).sum();
        let e2e = recv.saturating_since(hops[0].emitted_at).as_millis_f64();
        assert!(
            (total - e2e).abs() < 1e-6,
            "hops sum {total} ms but emit-to-arrival is {e2e} ms for {key:?}"
        );
        assert!(delivered_at >= recv, "accepted before arrival for {key:?}");
        // Emission times are monotone along the chain.
        for w in hops.windows(2) {
            assert!(w[1].emitted_at >= w[0].emitted_at, "non-monotone {key:?}");
        }
    }
    // At least 95% of delivered elements decompose with a full stamp set
    // (the rest lack one, e.g. elements re-created from a restored
    // checkpoint).
    assert!(
        decomposed as f64 >= delivered.len() as f64 * 0.95,
        "{decomposed} of {} delivered elements decomposed",
        delivered.len()
    );
}
