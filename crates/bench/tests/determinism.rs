//! The parallel runner's contract: for any `--jobs N`, a figure's merged
//! table, CSV export, and measured notes are byte-identical to the serial
//! run. Exercised here on two cheap quick-scale figures whose cells stress
//! both homogeneous (`fig11`: one cell per PE count) and grouped (`fig06`:
//! rate × config) fan-out.

use sps_bench::common::{Experiment, Scale};
use sps_bench::experiments::{fig06, fig09_11};
use sps_bench::runner::Runner;

/// Everything `Experiment::print` derives from the run: the rendered
/// table, the CSV export, and the computed notes.
fn rendered(e: &Experiment) -> String {
    format!(
        "{}\n--csv--\n{}\n--notes--\n{}",
        e.table,
        e.table.to_csv(),
        e.measured_notes.join("\n")
    )
}

#[test]
fn fig06_is_byte_identical_across_job_counts() {
    let serial = rendered(&fig06::fig06(&Runner::serial(), Scale::Quick, 2010));
    for jobs in [2, 8] {
        let parallel = rendered(&fig06::fig06(&Runner::new(jobs), Scale::Quick, 2010));
        assert_eq!(serial, parallel, "fig06 diverged at --jobs {jobs}");
    }
}

#[test]
fn fig11_is_byte_identical_across_job_counts() {
    let serial = rendered(&fig09_11::fig11(&Runner::serial(), Scale::Quick, 2010));
    for jobs in [2, 8] {
        let parallel = rendered(&fig09_11::fig11(&Runner::new(jobs), Scale::Quick, 2010));
        assert_eq!(serial, parallel, "fig11 diverged at --jobs {jobs}");
    }
}
