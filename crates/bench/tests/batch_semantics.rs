//! Regression pins for queue-depth semantics under the batched data plane.
//!
//! [`sps_sim::stats`] reports `peak_queue_depth` in *logical elements* in
//! flight (event weights), not heap entries: a coalesced
//! [`sps_engine::DataBatch`] delivery is one pending event but
//! `batch.len()` elements. This file pins the fig06-shaped workload's
//! depth at batch size 1 — where weights are all 1 and the figure must
//! match the historical entry-count semantics exactly — and at batch 16,
//! where an entry-counting implementation would report a different
//! (smaller) figure.
//!
//! One test function: the counters are process-global, so the two
//! measurements must not run on parallel test threads.

use sps_engine::SubjobId;
use sps_ha::{HaMode, HaSimulation};
use sps_sim::{SimDuration, SimTime};
use sps_workloads::chain_job_with;

/// Runs the fig06 rate-sweep cell (Hybrid-500ms, 10 K elements/s, 2
/// simulated seconds, seed 2010) and returns the peak logical queue depth.
fn fig06_peak_depth(batch_size: u32) -> u64 {
    let job = chain_job_with(15e-6, 20, 8, 4);
    let n_subjobs = job.subjob_count();
    let mut builder = HaSimulation::builder(job)
        .mode(HaMode::Hybrid)
        .source_rate(10_000.0)
        .seed(2010)
        .tune(|c| {
            c.batch_size = batch_size;
            c.checkpoint_interval = SimDuration::from_millis(500);
        });
    for sj in 0..n_subjobs as u32 {
        builder = builder.subjob_mode(SubjobId(sj), HaMode::Hybrid);
    }
    let mut sim = builder.build();
    sps_sim::stats::take(); // delimit this run's counter window
    sim.run_until(SimTime::from_secs(2));
    drop(sim); // the run's counters flush when the simulation drops
    sps_sim::stats::take().peak_queue_depth
}

#[test]
fn fig06_peak_depth_counts_logical_elements() {
    // Batch size 1: every event weighs 1, so the depth must equal the
    // historical entry-count figure for this deterministic cell.
    assert_eq!(fig06_peak_depth(1), 53);
    // Batch size 16: deliveries coalesce into range-stamped batches, but
    // the depth still counts the elements those entries carry. An
    // entry-counting implementation reports a different figure here.
    assert_eq!(fig06_peak_depth(16), 41);
}
