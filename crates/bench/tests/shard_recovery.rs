//! Per-shard recovery in a key-partitioned sharded job.
//!
//! The sharded topology (router + one subjob per shard) must recover a
//! failed shard through that shard's own checkpoint/standby machinery
//! while every other shard keeps processing undisturbed — the whole point
//! of making each shard its own subjob.

use sps_cluster::FaultTopology;
use sps_engine::SubjobId;
use sps_ha::{HaMode, HaSimulation, RateProfile, SjState};
use sps_sim::{SimDuration, SimTime};
use sps_workloads::{sharded_job, sharded_placement, single_failure, ZipfKeys};

const SHARDS: usize = 4;

/// Builds a 4-shard Zipf-keyed job on an 83-machine grid; returns the sim
/// plus the placement (for failure injection).
fn build(
    mode: Option<HaMode>,
    per_shard: &[(usize, HaMode)],
    seed: u64,
) -> (HaSimulation, sps_ha::Placement) {
    let job = sharded_job(SHARDS, 5e-4, 32);
    let topology = FaultTopology::grid(83, 4, 3);
    let placement = sharded_placement(&job, 83, &topology);
    let mut b = HaSimulation::builder(job)
        .topology(topology)
        .placement(placement.clone())
        .tune(|c| c.checkpoint_interval = SimDuration::from_secs(1))
        .source_profile(
            0,
            RateProfile::Constant { per_sec: 1_000.0 },
            ZipfKeys::new(100_000, 1.2).payload_gen(),
        )
        .log_sink_accepts(true)
        .seed(seed);
    if let Some(m) = mode {
        b = b.mode(m);
    }
    for &(shard, m) in per_shard {
        let sj = SubjobId(1 + shard as u32);
        b = b.subjob_mode(sj, m);
    }
    (b.build(), placement)
}

/// Failing the hot shard's primary recovers that shard through its own
/// checkpoint path; the other shards never leave `Normal` and the sink
/// keeps accepting throughout.
#[test]
fn hot_shard_recovers_without_disturbing_others() {
    let zipf = ZipfKeys::new(100_000, 1.2);
    let hot = zipf.hot_shard(SHARDS as u32) as usize;
    let (mut sim, placement) = build(Some(HaMode::Passive), &[], 42);
    let subjob = SubjobId(1 + hot as u32);
    let failure_at = SimTime::from_secs(5);
    sim.inject_spike_windows(
        placement.primaries[subjob.0 as usize],
        &single_failure(failure_at, SimDuration::from_secs(10)),
    );

    sim.run_until(failure_at + SimDuration::from_millis(150));
    let accepted_mid = sim.report().sink_accepted;
    // Healthy shards keep feeding the sink even while the hot shard is down.
    assert!(
        accepted_mid > 0,
        "sink should have accepted elements by +150ms"
    );
    for s in 0..SHARDS {
        if s == hot {
            continue;
        }
        assert_eq!(
            sim.world().subjob(SubjobId(1 + s as u32)).state,
            SjState::Normal,
            "healthy shard {s} left Normal during the hot shard's outage"
        );
    }

    sim.run_until(failure_at + SimDuration::from_secs(2));
    let timeline = sim
        .recovery_timeline(subjob, failure_at)
        .expect("hot shard should have a recovery timeline");
    assert!(
        timeline.detected_ms > 0.0 && timeline.ready_ms >= timeline.detected_ms,
        "detect {} ms / ready {} ms out of order",
        timeline.detected_ms,
        timeline.ready_ms
    );
    assert_eq!(
        sim.world().subjob(subjob).state,
        SjState::Normal,
        "hot shard should be back to Normal two seconds after the failure"
    );
    let accepted_late = sim.report().sink_accepted;
    assert!(
        accepted_late > accepted_mid,
        "sink accepts should keep growing after recovery ({accepted_late} vs {accepted_mid})"
    );
}

/// The same failure leaves a *different* (cold) shard's subjob untouched:
/// its recovery_timeline stays empty because it never failed.
#[test]
fn unfailed_shards_have_no_recovery_timeline() {
    let zipf = ZipfKeys::new(100_000, 1.2);
    let hot = zipf.hot_shard(SHARDS as u32) as usize;
    let cold = zipf.cold_shard(SHARDS as u32) as usize;
    assert_ne!(hot, cold);
    let (mut sim, placement) = build(Some(HaMode::Passive), &[], 42);
    let failure_at = SimTime::from_secs(5);
    sim.inject_spike_windows(
        placement.primaries[1 + hot],
        &single_failure(failure_at, SimDuration::from_secs(10)),
    );
    sim.run_until(failure_at + SimDuration::from_secs(2));
    assert!(sim
        .recovery_timeline(SubjobId(1 + hot as u32), failure_at)
        .is_some());
    assert!(
        sim.recovery_timeline(SubjobId(1 + cold as u32), failure_at)
            .is_none(),
        "cold shard never failed, so it must not report a recovery"
    );
}

/// Shards can run different HA modes side by side (per-subjob overrides):
/// the job still builds, runs, and delivers elements, and each shard's
/// subjob reports the mode it was given.
#[test]
fn per_shard_modes_coexist() {
    let overrides = [
        (0, HaMode::Active),
        (1, HaMode::Passive),
        (2, HaMode::Hybrid),
    ];
    let (mut sim, _) = build(None, &overrides, 7);
    sim.run_for(SimDuration::from_secs(5));
    for &(shard, mode) in &overrides {
        let sj = sim.world().subjob(SubjobId(1 + shard as u32));
        assert_eq!(sj.mode, mode, "shard {shard} should run its override mode");
    }
    assert!(
        sim.report().sink_accepted > 0,
        "mixed-mode sharded job should still deliver elements"
    );
}
