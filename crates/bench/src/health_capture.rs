//! The `--health-out` health-report capture: an instrumented hybrid run
//! whose online health engine (SLO monitors, anomaly detectors, recovery
//! budget tracking) exports its deterministic end-of-run report as JSONL.
//!
//! Figure binaries call [`maybe_capture`] after printing their tables with
//! the destination from [`crate::common::RunOpts`] (`--health-out <path>`
//! or `SPS_HEALTH_OUT`). Like the trace and metrics captures, the health
//! run is separate from the figure runs — figure numbers never come from an
//! instrumented simulation — and all status output goes to **stderr** so a
//! figure binary's stdout is byte-identical with and without the flag (the
//! CI no-perturbation check relies on this).

use std::path::Path;

use sps_cluster::{MachineId, SpikeWindow};
use sps_engine::SubjobId;
use sps_ha::{HaMode, HaSimulation};
use sps_observe::{HealthConfig, HealthReport};
use sps_sim::SimTime;
use sps_workloads::eval_chain_job;

/// Runs a health-instrumented hybrid scenario and returns the engine's
/// end-of-run report.
///
/// The scenario is the same transient-failure run as the metrics capture
/// (steady state, a 1 s load spike on the protected subjob's primary,
/// switch-over and rollback), so the report always contains at least one
/// full recovery cycle — which, at the default 200 ms budget, records a
/// deterministic breach span on the built-in `recovery_cycle_total`
/// monitor.
pub fn capture_health(seed: u64) -> HealthReport {
    let job = eval_chain_job();
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(seed)
        .tune(|c| c.reliable_control = true)
        .health(HealthConfig::default())
        .lineage(true)
        .build();
    sim.inject_spike_windows(
        MachineId(1),
        &[SpikeWindow {
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
            share: 1.0,
        }],
    );
    sim.stop_sources_at(SimTime::from_secs(4));
    sim.run_until(SimTime::from_secs(5));
    sim.world()
        .health()
        .expect("health engine enabled by builder")
        .report()
}

/// If a health destination was requested, runs the capture scenario and
/// writes its report there as JSONL. Status goes to stderr only.
pub fn maybe_capture(path: Option<&Path>, seed: u64) {
    let Some(path) = path else {
        return;
    };
    let report = capture_health(seed);
    match std::fs::File::create(path) {
        Ok(mut f) => match report.export(&mut f) {
            Ok(()) => eprintln!(
                "health: {} scrapes, {} SLO breaches, {} anomalies written to {}",
                report.scrapes,
                report.breach_count(),
                report.anomalies.len(),
                path.display()
            ),
            Err(e) => eprintln!(
                "warning: could not write health report to {}: {e}",
                path.display()
            ),
        },
        Err(e) => eprintln!("warning: could not create {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_observe::RECOVERY_MONITOR;

    #[test]
    fn capture_records_a_recovery_breach() {
        let report = capture_health(2010);
        assert!(report.scrapes >= 40, "scrapes: {}", report.scrapes);
        let recovery = report
            .monitors
            .iter()
            .find(|m| m.name == RECOVERY_MONITOR)
            .expect("built-in recovery monitor present");
        assert!(
            !recovery.spans.is_empty(),
            "the capture scenario's recovery cycle must breach the 200ms budget"
        );
        assert!(recovery.spans.iter().all(|s| s.end_ns.is_some()));
    }

    #[test]
    fn capture_is_deterministic() {
        let a = capture_health(7).to_jsonl_string();
        let b = capture_health(7).to_jsonl_string();
        assert_eq!(a, b);
    }
}
