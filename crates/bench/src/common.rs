//! Shared scaffolding for the figure-reproduction harnesses.

use sps_metrics::Table;

/// Experiment scale: `quick` shrinks runs for CI/smoke use; `full` matches
/// the parameters recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short runs, fewer seeds.
    Quick,
    /// Paper-scale runs.
    Full,
}

impl Scale {
    /// Reads the scale from process args (`--quick`) or the `SPS_QUICK`
    /// environment variable.
    pub fn from_env() -> Scale {
        let quick =
            std::env::args().any(|a| a == "--quick") || std::env::var_os("SPS_QUICK").is_some();
        if quick {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Picks between a full-scale and quick value.
    pub fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

/// The uniform output of one experiment harness.
#[derive(Debug)]
pub struct Experiment {
    /// Which figure this reproduces (e.g. "Figure 7").
    pub figure: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// The regenerated series.
    pub table: Table,
    /// What the paper reports, for eyeball comparison.
    pub paper_notes: Vec<String>,
    /// What this run shows (computed summary claims).
    pub measured_notes: Vec<String>,
}

impl Experiment {
    /// Prints the experiment in the standard layout. If the `SPS_CSV_DIR`
    /// environment variable is set, the table is also written there as
    /// `<figure>.csv` (for plotting).
    pub fn print(&self) {
        if let Some(dir) = std::env::var_os("SPS_CSV_DIR") {
            let name: String = self
                .figure
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, self.table.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        println!("== {} — {} ==", self.figure, self.title);
        println!();
        print!("{}", self.table);
        println!();
        if !self.paper_notes.is_empty() {
            println!("paper:");
            for n in &self.paper_notes {
                println!("  - {n}");
            }
        }
        if !self.measured_notes.is_empty() {
            println!("measured:");
            for n in &self.measured_notes {
                println!("  - {n}");
            }
        }
        println!();
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Full.pick(10, 2), 10);
        assert_eq!(Scale::Quick.pick(10, 2), 2);
    }

    #[test]
    fn csv_export_writes_a_file() {
        let dir = std::env::temp_dir().join(format!("sps_csv_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("SPS_CSV_DIR", &dir);
        let mut table = Table::new(vec!["x"]);
        table.row(vec!["1".into()]);
        let e = Experiment {
            figure: "Figure 99",
            title: "csv smoke",
            table,
            paper_notes: vec![],
            measured_notes: vec![],
        };
        e.print();
        std::env::remove_var("SPS_CSV_DIR");
        let written = std::fs::read_to_string(dir.join("figure_99.csv")).unwrap();
        assert_eq!(written, "x\n1\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
