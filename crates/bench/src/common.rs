//! Shared scaffolding for the figure-reproduction harnesses.

use std::path::PathBuf;

use sps_metrics::Table;

use crate::runner::Runner;

/// Experiment scale: `quick` shrinks runs for CI/smoke use; `full` matches
/// the parameters recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short runs, fewer seeds.
    Quick,
    /// Paper-scale runs.
    Full,
}

impl Scale {
    /// Picks between a full-scale and quick value.
    pub fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

/// Command-line options shared by every figure binary, parsed exactly once
/// in `main` and passed down explicitly — library code never scans argv.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// `--quick` (or `SPS_QUICK`): shrink runs for CI/smoke use.
    pub scale: Scale,
    /// `--jobs N` (or `SPS_JOBS`): worker-thread budget for the cell
    /// runner. Defaults to the machine's available parallelism.
    pub jobs: usize,
    /// `--seed N`: base RNG seed for every simulation cell.
    pub seed: u64,
    /// `--trace-out PATH` (or `SPS_TRACE_OUT`): flight-recorder JSONL dump
    /// destination for the instrumented capture run.
    pub trace_out: Option<PathBuf>,
    /// `--metrics-out PATH` (or `SPS_METRICS_OUT`): registry scrape-series
    /// destination (`.csv` for CSV, anything else for JSONL) for the
    /// instrumented capture run. Status goes to stderr so stdout stays
    /// byte-identical with and without the flag.
    pub metrics_out: Option<PathBuf>,
    /// `--health-out PATH` (or `SPS_HEALTH_OUT`): health-report JSONL
    /// destination for the instrumented capture run (SLO breach spans,
    /// anomaly spans, rate series). Status goes to stderr so stdout stays
    /// byte-identical with and without the flag.
    pub health_out: Option<PathBuf>,
    /// `--audit-out PATH` (or `SPS_AUDIT_OUT`): protocol-audit report
    /// destination. The auditor rides the trace bus of the instrumented
    /// capture run (or, for the campaign binaries, the real runs) and
    /// writes its deterministic end-of-run report here. Status goes to
    /// stderr so stdout stays byte-identical with and without the flag.
    pub audit_out: Option<PathBuf>,
}

impl RunOpts {
    /// Parses the process arguments and environment.
    pub fn parse() -> RunOpts {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (environment variables still act
    /// as fallbacks). Unknown flags are ignored so binaries can layer
    /// their own options on top.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> RunOpts {
        let mut quick = std::env::var_os("SPS_QUICK").is_some();
        let mut jobs: Option<usize> = None;
        let mut seed: u64 = 2010;
        let mut trace_out: Option<PathBuf> = None;
        let mut metrics_out: Option<PathBuf> = None;
        let mut health_out: Option<PathBuf> = None;
        let mut audit_out: Option<PathBuf> = None;
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            let mut take = |inline: Option<&str>| -> Option<String> {
                inline.map(str::to_string).or_else(|| args.next())
            };
            if a == "--quick" {
                quick = true;
            } else if a == "--jobs" || a.starts_with("--jobs=") {
                jobs = take(a.strip_prefix("--jobs=")).and_then(|v| v.parse().ok());
            } else if a == "--seed" || a.starts_with("--seed=") {
                if let Some(v) = take(a.strip_prefix("--seed=")).and_then(|v| v.parse().ok()) {
                    seed = v;
                }
            } else if a == "--trace-out" || a.starts_with("--trace-out=") {
                trace_out = take(a.strip_prefix("--trace-out=")).map(PathBuf::from);
            } else if a == "--metrics-out" || a.starts_with("--metrics-out=") {
                metrics_out = take(a.strip_prefix("--metrics-out=")).map(PathBuf::from);
            } else if a == "--health-out" || a.starts_with("--health-out=") {
                health_out = take(a.strip_prefix("--health-out=")).map(PathBuf::from);
            } else if a == "--audit-out" || a.starts_with("--audit-out=") {
                audit_out = take(a.strip_prefix("--audit-out=")).map(PathBuf::from);
            }
        }
        let jobs = jobs
            .or_else(|| std::env::var("SPS_JOBS").ok().and_then(|v| v.parse().ok()))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);
        if trace_out.is_none() {
            trace_out = std::env::var_os("SPS_TRACE_OUT").map(PathBuf::from);
        }
        if metrics_out.is_none() {
            metrics_out = std::env::var_os("SPS_METRICS_OUT").map(PathBuf::from);
        }
        if health_out.is_none() {
            health_out = std::env::var_os("SPS_HEALTH_OUT").map(PathBuf::from);
        }
        if audit_out.is_none() {
            audit_out = std::env::var_os("SPS_AUDIT_OUT").map(PathBuf::from);
        }
        RunOpts {
            scale: if quick { Scale::Quick } else { Scale::Full },
            jobs,
            seed,
            trace_out,
            metrics_out,
            health_out,
            audit_out,
        }
    }

    /// Builds the cell runner for this invocation.
    pub fn runner(&self) -> Runner {
        Runner::new(self.jobs)
    }
}

/// The uniform output of one experiment harness.
#[derive(Debug)]
pub struct Experiment {
    /// Which figure this reproduces (e.g. "Figure 7").
    pub figure: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// The regenerated series.
    pub table: Table,
    /// What the paper reports, for eyeball comparison.
    pub paper_notes: Vec<String>,
    /// What this run shows (computed summary claims).
    pub measured_notes: Vec<String>,
}

impl Experiment {
    /// Prints the experiment in the standard layout. If the `SPS_CSV_DIR`
    /// environment variable is set, the table is also written there as
    /// `<figure>.csv` (for plotting).
    pub fn print(&self) {
        if let Some(dir) = std::env::var_os("SPS_CSV_DIR") {
            let name: String = self
                .figure
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, self.table.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        println!("== {} — {} ==", self.figure, self.title);
        println!();
        print!("{}", self.table);
        println!();
        if !self.paper_notes.is_empty() {
            println!("paper:");
            for n in &self.paper_notes {
                println!("  - {n}");
            }
        }
        if !self.measured_notes.is_empty() {
            println!("measured:");
            for n in &self.measured_notes {
                println!("  - {n}");
            }
        }
        println!();
    }
}

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable (non-Linux
/// hosts). This is an OS-level high-water mark for the whole process —
/// cumulative across cells, so per-figure attribution needs the
/// `bench`-feature live-bytes counters; the RSS reading contextualizes
/// them against real memory pressure.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Full.pick(10, 2), 10);
        assert_eq!(Scale::Quick.pick(10, 2), 2);
    }

    #[test]
    fn run_opts_parse_flags() {
        let to_args = |s: &str| s.split_whitespace().map(str::to_string).collect::<Vec<_>>();
        let o = RunOpts::from_args(to_args(
            "--quick --jobs 3 --seed 77 --trace-out t.jsonl --metrics-out m.jsonl --health-out h.jsonl --audit-out a.jsonl",
        ));
        assert_eq!(o.scale, Scale::Quick);
        assert_eq!(o.jobs, 3);
        assert_eq!(o.seed, 77);
        assert_eq!(
            o.trace_out.as_deref(),
            Some(std::path::Path::new("t.jsonl"))
        );
        assert_eq!(
            o.metrics_out.as_deref(),
            Some(std::path::Path::new("m.jsonl"))
        );
        assert_eq!(
            o.health_out.as_deref(),
            Some(std::path::Path::new("h.jsonl"))
        );
        assert_eq!(
            o.audit_out.as_deref(),
            Some(std::path::Path::new("a.jsonl"))
        );

        let o = RunOpts::from_args(to_args(
            "--jobs=8 --seed=5 --trace-out=x.jsonl --metrics-out=m.csv --health-out=h2.jsonl --audit-out=a2.txt",
        ));
        assert_eq!(o.scale, Scale::Full);
        assert_eq!(o.jobs, 8);
        assert_eq!(o.seed, 5);
        assert_eq!(
            o.trace_out.as_deref(),
            Some(std::path::Path::new("x.jsonl"))
        );
        assert_eq!(
            o.metrics_out.as_deref(),
            Some(std::path::Path::new("m.csv"))
        );
        assert_eq!(
            o.health_out.as_deref(),
            Some(std::path::Path::new("h2.jsonl"))
        );
        assert_eq!(o.audit_out.as_deref(), Some(std::path::Path::new("a2.txt")));

        // Unknown flags are ignored; defaults hold.
        let o = RunOpts::from_args(to_args("--out somewhere.json"));
        assert_eq!(o.scale, Scale::Full);
        assert_eq!(o.seed, 2010);
        assert!(o.jobs >= 1);
    }

    #[test]
    fn csv_export_writes_a_file() {
        let dir = std::env::temp_dir().join(format!("sps_csv_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("SPS_CSV_DIR", &dir);
        let mut table = Table::new(vec!["x"]);
        table.row(vec!["1".into()]);
        let e = Experiment {
            figure: "Figure 99",
            title: "csv smoke",
            table,
            paper_notes: vec![],
            measured_notes: vec![],
        };
        e.print();
        std::env::remove_var("SPS_CSV_DIR");
        let written = std::fs::read_to_string(dir.join("figure_99.csv")).unwrap();
        assert_eq!(written, "x\n1\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss > 0);
        }
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
