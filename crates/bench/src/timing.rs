//! A tiny self-contained timing harness for the `harness = false` bench
//! targets. The container has no external benchmarking framework, so each
//! case is warmed up once and then timed over a fixed iteration count with
//! [`std::time::Instant`]; the per-iteration mean and total are printed in
//! a stable one-line format.

use std::time::Instant;

/// Run `f` once as warm-up, then `iters_hint`-scaled timed repetitions,
/// and print `name: <mean per iter> (<n> iters, <total>)`.
///
/// `work_units` is the nominal number of inner operations one call of `f`
/// performs; it only affects the printed per-unit figure, not the timing
/// loop itself.
pub fn bench<F: FnMut()>(name: &str, work_units: u64, mut f: F) {
    // Warm-up: populate caches and fault in lazily-initialised state.
    f();
    // Calibrate: aim for ~0.2s of total measured time, between 3 and 200
    // repetitions.
    let probe = Instant::now();
    f();
    let once = probe.elapsed().max(std::time::Duration::from_nanos(1));
    let reps = (0.2 / once.as_secs_f64()).clamp(3.0, 200.0) as u32;

    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    let total = start.elapsed();
    let per_call = total / reps;
    let per_unit = total.as_nanos() as f64 / (reps as u128 * work_units.max(1) as u128) as f64;
    println!("{name}: {per_call:?}/call, {per_unit:.1} ns/unit ({reps} calls, total {total:?})");
}
