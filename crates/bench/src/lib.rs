//! # sps-bench — the figure-reproduction harnesses
//!
//! One experiment per figure of Zhang et al. (ICDCS 2010), each exposed as
//! a library function (returning an [`Experiment`](common::Experiment) with
//! the regenerated series) and as a runnable binary (`cargo run --release
//! -p sps-bench --bin figNN`). Pass `--quick` (or set `SPS_QUICK`) for a
//! fast reduced run.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod audit_capture;
pub mod common;
pub mod health_capture;
pub mod metrics_capture;
pub mod runner;
pub mod timing;
pub mod trace_capture;

/// The per-figure experiment modules.
pub mod experiments {
    pub mod ablation;
    pub mod detectors;
    pub mod fig01_03;
    pub mod fig04_05;
    pub mod fig06;
    pub mod fig07_08;
    pub mod fig09_11;
    pub mod fig12_13;
    pub mod hybrid_opts;
}
