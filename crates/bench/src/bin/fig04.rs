//! Regenerates the paper's Figure 4 series (plus the §V-B "8-fold during
//! failure periods" observation). Pass `--quick` for a fast run.

use sps_bench::common::RunOpts;
use sps_bench::experiments::fig04_05::{failure_period_inflation, fig04};
use sps_bench::{audit_capture, health_capture, metrics_capture, trace_capture};

fn main() {
    let opts = RunOpts::parse();
    fig04(&opts.runner(), opts.scale, opts.seed).print();
    let (inside, outside) = failure_period_inflation(opts.scale, opts.seed);
    println!(
        "During-failure delay inflation (NONE, 50% failure time): {inside:.1} ms inside vs \
         {outside:.1} ms outside failure windows ({:.1}x; paper reports over 8x at 85% CPU)",
        inside / outside.max(1e-9)
    );
    trace_capture::maybe_capture(opts.trace_out.as_deref(), opts.seed);
    metrics_capture::maybe_capture(opts.metrics_out.as_deref(), opts.seed);
    health_capture::maybe_capture(opts.health_out.as_deref(), opts.seed);
    audit_capture::maybe_capture(opts.audit_out.as_deref(), opts.seed);
}
