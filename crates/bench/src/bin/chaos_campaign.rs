//! Chaos robustness campaign (not a paper figure): sweeps per-link loss
//! rates under a correlated two-machine fail-stop and reports whether the
//! hybrid protocol reached quiescence with exactly-once sink delivery.
//!
//! Pass `--quick` for a reduced sweep and `--jobs N` to run the loss
//! levels as parallel cells (output is byte-identical for any N). With
//! `--trace-out <path>` (or `SPS_TRACE_OUT`) the flight-recorder JSONL of
//! the heaviest-loss run is written there; the dump is a deterministic
//! function of the seed, which the CI determinism job checks by
//! byte-diffing two runs. `--metrics-out` and `--health-out` run the same
//! instrumented capture scenarios as the figure binaries. `--audit-out
//! <path>` attaches the protocol auditor to every real sweep cell and
//! writes the per-cell reports there (status on stderr, stdout unchanged).

use sps_audit::Auditor;
use sps_bench::common::{Experiment, RunOpts};
use sps_bench::{health_capture, metrics_capture};
use sps_cluster::{BurstLoss, ChaosPlan, FaultProfile, MachineId};
use sps_engine::SubjobId;
use sps_ha::{HaEventKind, HaMode, HaSimulation};
use sps_metrics::Table;
use sps_sim::{SimDuration, SimTime};
use sps_trace::{SharedRecorder, Telemetry};
use sps_workloads::eval_chain_job;

struct CampaignRun {
    produced: u64,
    accepted: u64,
    sink_duplicates: u64,
    chaos_drops: u64,
    retransmits: u64,
    promotions: usize,
    all_normal: bool,
    /// The flight recorder's JSONL dump, exported inside the cell: the
    /// recorder itself is single-threaded (`Rc`), so the serialized bytes
    /// are what crosses back to the submitting thread.
    trace_jsonl: Vec<u8>,
    trace_records: usize,
    /// The protocol auditor's end-of-run report, when `--audit-out`
    /// attached the auditor to this cell's trace bus.
    audit_report: Option<String>,
    audit_violations: u64,
}

fn run_campaign(loss: f64, seed: u64, audit: bool) -> CampaignRun {
    // The zero-loss baseline gets a clean network (no burst chain either).
    let weather = if loss > 0.0 {
        FaultProfile::loss(loss).with_burst(BurstLoss {
            good_to_bad: 0.01,
            bad_to_good: 0.2,
            bad_loss_prob: 0.6,
        })
    } else {
        FaultProfile::default()
    };
    let plan = ChaosPlan::default()
        .loss_window(SimTime::from_millis(500), SimTime::from_secs(6), weather)
        .correlated_fail_stop(SimTime::from_secs(3), &[MachineId(1), MachineId(3)]);
    // Control-plane-only keeps the JSONL dump small enough to byte-diff
    // in CI while retaining every fault, chaos, and recovery record.
    let recorder = SharedRecorder::default().control_plane_only();
    let mut builder = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::Hybrid)
        .source_rate(500.0)
        .seed(seed)
        .tune(|c| {
            c.reliable_control = true;
            c.failstop_miss_threshold = 20;
        })
        .chaos(plan)
        .trace_sink(Box::new(recorder.clone()))
        // The run promises losslessness and quiescence — the table's own
        // exactly_once/quiescent columns assert the same. Declared
        // unconditionally so the JSONL preamble (and hence an offline
        // `sps-inspect audit` of the dump) is identical with and without
        // `--audit-out`.
        .audit_expectations(true, true);
    if audit {
        // The auditor rides this cell's real trace bus: a strictly
        // read-only probe, so the sweep stays byte-identical with and
        // without it.
        builder = builder.trace_probe(Box::new(Auditor::new()));
    }
    let mut sim = builder.build();
    sim.stop_sources_at(SimTime::from_secs(10));
    sim.run_for(SimDuration::from_secs(16));
    sim.finish_probes();

    let mut telemetry = Telemetry::new();
    recorder.with(|r| telemetry.ingest_all(r.records()));
    let world = sim.world();
    let promotions = world
        .ha_events()
        .iter()
        .filter(|e| e.kind == HaEventKind::Promoted)
        .count();
    let all_normal = (0..world.job().subjob_count() as u32)
        .all(|sj| world.subjob(SubjobId(sj)).state == sps_ha::SjState::Normal);
    let mut trace_jsonl = Vec::new();
    recorder
        .export_jsonl(&mut trace_jsonl)
        .expect("in-memory JSONL export cannot fail");
    let trace_records = recorder.with(|r| r.len());
    CampaignRun {
        produced: world.sources()[0].produced(),
        accepted: world.sinks()[0].accepted(),
        sink_duplicates: world.sinks()[0].duplicates_dropped(),
        chaos_drops: telemetry.chaos_net_drops(),
        retransmits: telemetry.retransmits(),
        promotions,
        all_normal,
        trace_jsonl,
        trace_records,
        audit_report: sim.audit_report(),
        audit_violations: sim.audit_violations(),
    }
}

fn main() {
    let opts = RunOpts::parse();
    let losses: Vec<f64> = opts
        .scale
        .pick(vec![0.0, 0.01, 0.02, 0.05], vec![0.0, 0.02]);
    let seed = opts.seed;

    // Each loss level is an independent simulation cell; results come back
    // in sweep order, so the table (and the heaviest-loss recorder kept for
    // the deterministic JSONL dump) match the serial sweep byte for byte.
    let audit = opts.audit_out.is_some();
    let runs = opts
        .runner()
        .map(losses.clone(), move |loss| run_campaign(loss, seed, audit));

    let mut table = Table::new(vec![
        "loss_pct",
        "produced",
        "accepted",
        "sink_dups",
        "chaos_drops",
        "retransmits",
        "promotions",
        "quiescent",
        "exactly_once",
    ]);
    let mut last_trace = None;
    let mut all_ok = true;
    let mut audit_reports = String::new();
    let mut audit_violations = 0u64;
    for (&loss, run) in losses.iter().zip(runs) {
        let exactly_once = run.accepted == run.produced;
        all_ok &= exactly_once && run.all_normal && run.promotions == 2;
        table.row(vec![
            format!("{:.1}", loss * 100.0),
            run.produced.to_string(),
            run.accepted.to_string(),
            run.sink_duplicates.to_string(),
            run.chaos_drops.to_string(),
            run.retransmits.to_string(),
            run.promotions.to_string(),
            run.all_normal.to_string(),
            exactly_once.to_string(),
        ]);
        if let Some(report) = &run.audit_report {
            audit_reports.push_str(&format!(
                "=== cell loss={:.1}% ===\n{report}\n",
                loss * 100.0
            ));
            audit_violations += run.audit_violations;
        }
        last_trace = Some((run.trace_jsonl, run.trace_records));
    }

    Experiment {
        figure: "Chaos campaign",
        title: "correlated two-machine fail-stop under per-link chaos loss",
        table,
        paper_notes: vec![
            "the hybrid absorbs false alarms cheaply and promotes only on real fail-stops".into(),
        ],
        measured_notes: vec![if all_ok {
            "every sweep point reached quiescence with exactly-once delivery and \
             exactly one promotion per failed primary"
                .into()
        } else {
            "INVARIANT VIOLATION: at least one sweep point lost or duplicated data, \
             failed to settle, or promoted more than once per failure"
                .into()
        }],
    }
    .print();

    if let Some(path) = &opts.trace_out {
        let (trace, records) = last_trace.expect("at least one sweep point ran");
        match std::fs::write(path, trace) {
            Ok(()) => println!("trace: {records} records written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write trace to {}: {e}", path.display()),
        }
    }
    if let Some(path) = &opts.audit_out {
        // Status on stderr: the campaign stdout stays byte-identical with
        // and without auditing, which CI byte-compares.
        match std::fs::write(path, &audit_reports) {
            Ok(()) => eprintln!(
                "audit: {audit_violations} violations across {} cells, reports written to {}",
                losses.len(),
                path.display()
            ),
            Err(e) => eprintln!(
                "warning: could not write audit reports to {}: {e}",
                path.display()
            ),
        }
    }
    metrics_capture::maybe_capture(opts.metrics_out.as_deref(), opts.seed);
    health_capture::maybe_capture(opts.health_out.as_deref(), opts.seed);
}
