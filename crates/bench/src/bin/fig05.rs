//! Regenerates the paper's fig05 series. Pass `--quick` for a fast run.

use sps_bench::common::Scale;
use sps_bench::experiments::fig04_05::fig05 as experiment;
use sps_bench::trace_capture;

fn main() {
    let scale = Scale::from_env();
    experiment(scale, 2010).print();
    trace_capture::maybe_capture(2010);
}
