//! Domain-failure chaos campaign (the fault-domain figure): availability
//! under k successive correlated rack failures, domain-aware vs. static
//! (rack-colocated) placement.
//!
//! Every fault sequence targets the racks that hold live replicas at that
//! point of the run. With domain-aware placement each rack failure takes
//! out only one copy of every subjob — the promotion-safety ladder
//! promotes the surviving standby and a fresh standby is re-provisioned on
//! a healthy, domain-disjoint spare — so availability stays at 100% for
//! any k the spare pool can fund. With static placement the very first
//! rack failure removes both replicas (and the checkpoint store) of the
//! colocated subjobs, and the spare-redeploy fallback can only restart
//! them empty.
//!
//! Pass `--quick` for a reduced sweep and `--jobs N` to run the cells in
//! parallel (output is byte-identical for any N). With `--trace-out
//! <path>` the flight-recorder JSONL of the heaviest cell is written
//! there; `--health-out <path>` captures a separate health-instrumented
//! standby-rack failure whose report closes a `redundancy_loss` anomaly
//! span (the CI soak step greps for it); `--metrics-out <path>` runs the
//! same instrumented metrics capture as the figure binaries; `--audit-out
//! <path>` attaches the protocol auditor to every real sweep cell and
//! writes the per-cell reports there (status on stderr, stdout unchanged).

use std::path::Path;

use sps_audit::Auditor;
use sps_bench::common::{Experiment, RunOpts};
use sps_bench::metrics_capture;
use sps_cluster::{ChaosPlan, DomainId, FaultTopology, MachineId};
use sps_engine::SubjobId;
use sps_ha::{HaEventKind, HaMode, HaSimulation, Placement, SjState};
use sps_metrics::Table;
use sps_observe::HealthConfig;
use sps_sim::{SimDuration, SimTime};
use sps_trace::{SharedRecorder, TraceEvent};
use sps_workloads::eval_chain_job;

/// Six racks, one switch per rack. Racks r0/r1 hold the job, r2–r4 fund
/// re-provisioning, and the two-machine rack r5 hosts the source and sink
/// and is never faulted.
fn topology() -> FaultTopology {
    FaultTopology::grid(22, 4, 1)
}

/// Domain-disjoint layout: primaries fill r0, standbys fill r1, so no
/// single rack failure can remove both copies of any subjob.
fn domain_aware_placement() -> Placement {
    Placement {
        primaries: (0..4).map(MachineId).collect(),
        secondaries: (4..8).map(|m| Some(MachineId(m))).collect(),
        sources: vec![MachineId(20)],
        sinks: vec![MachineId(21)],
        spares: (8..20).map(MachineId).collect(),
    }
}

/// Domain-oblivious layout: each subjob's standby sits right next to its
/// primary, two full pairs per rack — one rack failure kills both copies.
fn static_placement() -> Placement {
    Placement {
        primaries: vec![MachineId(0), MachineId(2), MachineId(4), MachineId(6)],
        secondaries: vec![
            Some(MachineId(1)),
            Some(MachineId(3)),
            Some(MachineId(5)),
            Some(MachineId(7)),
        ],
        sources: vec![MachineId(20)],
        sinks: vec![MachineId(21)],
        spares: (8..20).map(MachineId).collect(),
    }
}

/// The first `k` entries follow the live replicas of the domain-aware
/// layout: primaries start on r0, promotion moves them to r1, and
/// re-provisioning lands the replacement standbys on r4 (the spare pool is
/// drained from the top).
fn fault_racks(k: usize) -> Vec<(SimTime, DomainId)> {
    [
        (SimTime::from_secs(3), DomainId(0)),
        (SimTime::from_secs(7), DomainId(1)),
        (SimTime::from_secs(11), DomainId(4)),
    ][..k]
        .to_vec()
}

struct CampaignRun {
    produced: u64,
    accepted: u64,
    promotions: usize,
    aborts: usize,
    all_normal: bool,
    pairs_disjoint: bool,
    trace_jsonl: Vec<u8>,
    trace_records: usize,
    /// The protocol auditor's end-of-run report, when `--audit-out`
    /// attached the auditor to this cell's trace bus.
    audit_report: Option<String>,
    audit_violations: u64,
}

fn run_campaign(
    placement: Placement,
    domain_aware: bool,
    k: usize,
    seed: u64,
    audit: bool,
) -> CampaignRun {
    let topology = topology();
    let mut plan = ChaosPlan::default();
    for (at, rack) in fault_racks(k) {
        plan = plan.domain_fail_stop(at, rack);
    }
    let recorder = SharedRecorder::default().control_plane_only();
    let mut builder = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::Hybrid)
        .source_rate(500.0)
        .seed(seed)
        .tune(|c| {
            c.reliable_control = true;
            c.failstop_miss_threshold = 20;
        })
        .placement(placement)
        .topology(topology.clone())
        .chaos(plan)
        .trace_sink(Box::new(recorder.clone()))
        // Domain-aware cells promise lossless, quiescent runs — the same
        // claim the table's avail/quiescent columns make. Static cells
        // deliberately lose both replicas to one rack, so only the
        // always-on invariants apply there (the end-of-run gap and
        // coverage checks would flag placement policy, not protocol
        // bugs). Declared unconditionally so the JSONL preamble (and an
        // offline `sps-inspect audit` of the dump) is identical with and
        // without `--audit-out`.
        .audit_expectations(domain_aware, domain_aware);
    if audit {
        // The auditor is a strictly read-only probe on this cell's real
        // trace bus: the campaign output stays byte-identical with and
        // without it.
        builder = builder.trace_probe(Box::new(Auditor::new()));
    }
    let mut sim = builder.build();
    sim.stop_sources_at(SimTime::from_secs(15));
    sim.run_for(SimDuration::from_secs(22));
    sim.finish_probes();

    let world = sim.world();
    let promotions = world
        .ha_events()
        .iter()
        .filter(|e| e.kind == HaEventKind::Promoted)
        .count();
    let aborts = recorder.with(|r| {
        r.records()
            .filter(|rec| matches!(rec.event, TraceEvent::FailoverAborted { .. }))
            .count()
    });
    let subjob_count = world.job().subjob_count() as u32;
    let all_normal =
        (0..subjob_count).all(|sj| world.subjob(SubjobId(sj)).state == SjState::Normal);
    let pairs_disjoint = (0..subjob_count).all(|sj| {
        let s = world.subjob(SubjobId(sj));
        s.secondary_machine.is_some_and(|sec| {
            world.cluster().machine(sec).is_up() && topology.domain_disjoint(s.primary_machine, sec)
        })
    });
    let mut trace_jsonl = Vec::new();
    recorder
        .export_jsonl(&mut trace_jsonl)
        .expect("in-memory JSONL export cannot fail");
    let trace_records = recorder.with(|r| r.len());
    CampaignRun {
        produced: world.sources()[0].produced(),
        accepted: world.sinks()[0].accepted(),
        promotions,
        aborts,
        all_normal,
        pairs_disjoint,
        trace_jsonl,
        trace_records,
        audit_report: sim.audit_report(),
        audit_violations: sim.audit_violations(),
    }
}

/// A health-instrumented standby-rack failure: the whole standby rack r1
/// dies at 2s, the redundancy-loss detector fires while the four subjobs
/// run unprotected, and the span closes when re-provisioning lands the
/// replacement standbys. The stretched deploy delay guarantees several
/// scrapes inside the degraded window.
fn maybe_capture_domain_health(path: Option<&Path>, seed: u64) {
    let Some(path) = path else {
        return;
    };
    let plan = ChaosPlan::default().domain_fail_stop(SimTime::from_secs(2), DomainId(1));
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(seed)
        .tune(|c| {
            c.reliable_control = true;
            c.deploy_delay = SimDuration::from_millis(600);
        })
        .placement(domain_aware_placement())
        .topology(topology())
        .chaos(plan)
        .health(HealthConfig::default())
        .build();
    sim.stop_sources_at(SimTime::from_secs(4));
    sim.run_until(SimTime::from_secs(6));
    let report = sim
        .world()
        .health()
        .expect("health engine enabled by builder")
        .report();
    match std::fs::File::create(path) {
        Ok(mut f) => match report.export(&mut f) {
            Ok(()) => eprintln!(
                "health: {} scrapes, {} SLO breaches, {} anomalies written to {}",
                report.scrapes,
                report.breach_count(),
                report.anomalies.len(),
                path.display()
            ),
            Err(e) => eprintln!(
                "warning: could not write health report to {}: {e}",
                path.display()
            ),
        },
        Err(e) => eprintln!("warning: could not create {}: {e}", path.display()),
    }
}

fn main() {
    let opts = RunOpts::parse();
    let ks: Vec<usize> = opts.scale.pick(vec![0, 1, 2, 3], vec![0, 1, 3]);
    let seed = opts.seed;

    // Static first, domain-aware second, so the flight-recorder dump kept
    // for `--trace-out` is the heaviest domain-aware cell.
    let cells: Vec<(usize, bool)> = ks.iter().flat_map(|&k| [(k, false), (k, true)]).collect();
    let audit = opts.audit_out.is_some();
    let runs = opts.runner().map(cells.clone(), move |(k, domain_aware)| {
        let placement = if domain_aware {
            domain_aware_placement()
        } else {
            static_placement()
        };
        run_campaign(placement, domain_aware, k, seed, audit)
    });

    let mut table = Table::new(vec![
        "faults",
        "placement",
        "produced",
        "accepted",
        "avail_pct",
        "promotions",
        "aborts",
        "quiescent",
        "disjoint",
    ]);
    let mut last_trace = None;
    let mut aware_ok = true;
    let mut static_degraded = false;
    let mut audit_reports = String::new();
    let mut audit_violations = 0u64;
    for (&(k, domain_aware), run) in cells.iter().zip(runs) {
        let avail = if run.produced == 0 {
            100.0
        } else {
            run.accepted as f64 * 100.0 / run.produced as f64
        };
        if domain_aware {
            aware_ok &= run.accepted == run.produced
                && run.all_normal
                && run.pairs_disjoint
                && run.aborts == 0;
        } else if k > 0 {
            static_degraded |= run.accepted < run.produced || !run.all_normal;
        }
        table.row(vec![
            k.to_string(),
            if domain_aware { "domain" } else { "static" }.to_string(),
            run.produced.to_string(),
            run.accepted.to_string(),
            format!("{avail:.3}"),
            run.promotions.to_string(),
            run.aborts.to_string(),
            run.all_normal.to_string(),
            run.pairs_disjoint.to_string(),
        ]);
        if let Some(report) = &run.audit_report {
            audit_reports.push_str(&format!(
                "=== cell faults={k} placement={} ===\n{report}\n",
                if domain_aware { "domain" } else { "static" }
            ));
            audit_violations += run.audit_violations;
        }
        last_trace = Some((run.trace_jsonl, run.trace_records));
    }

    Experiment {
        figure: "Domain campaign",
        title: "availability vs. successive correlated rack failures, by placement",
        table,
        paper_notes: vec![
            "replica placement across fault domains is what lets an SPE absorb \
             correlated failures instead of merely independent ones"
                .into(),
        ],
        measured_notes: vec![
            if aware_ok {
                "domain-aware placement survives every fault sequence: exactly-once \
                 delivery, zero ladder dead-ends, and a live domain-disjoint standby \
                 re-provisioned after each cycle"
                    .into()
            } else {
                "INVARIANT VIOLATION: a domain-aware cell lost data, aborted a \
                 failover, or finished without a domain-disjoint standby"
                    .into()
            },
            if static_degraded {
                "static placement loses both replicas to a single rack failure and \
                 degrades availability"
                    .into()
            } else {
                "static placement was not degraded by this sweep".into()
            },
        ],
    }
    .print();

    if let Some(path) = &opts.trace_out {
        let (trace, records) = last_trace.expect("at least one sweep cell ran");
        // Status goes to stderr so figure stdout stays byte-identical to
        // the committed golden whatever flags the soak run passes.
        match std::fs::write(path, trace) {
            Ok(()) => eprintln!("trace: {records} records written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write trace to {}: {e}", path.display()),
        }
    }
    if let Some(path) = &opts.audit_out {
        // Status on stderr, like the trace export: the campaign stdout
        // stays byte-identical to the committed golden.
        match std::fs::write(path, &audit_reports) {
            Ok(()) => eprintln!(
                "audit: {audit_violations} violations across {} cells, reports written to {}",
                cells.len(),
                path.display()
            ),
            Err(e) => eprintln!(
                "warning: could not write audit reports to {}: {e}",
                path.display()
            ),
        }
    }
    metrics_capture::maybe_capture(opts.metrics_out.as_deref(), opts.seed);
    maybe_capture_domain_health(opts.health_out.as_deref(), opts.seed);
}
