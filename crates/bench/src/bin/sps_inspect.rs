//! `sps-inspect` — offline analysis of the simulator's JSONL artifacts
//! (`--trace-out`, `--metrics-out`, `--health-out`, lineage exports).
//!
//! ```text
//! sps-inspect summary  <dump.jsonl>...       per-kind counts, time range,
//!                                            recovery cycles, SLO/anomaly roll-up
//! sps-inspect timeline <trace.jsonl>         per-machine / per-PE event timeline
//! sps-inspect diff     <a.jsonl> <b.jsonl>   first divergent line + field
//!                                            (exit 1 when the files differ)
//! sps-inspect flame    <trace.jsonl>         recovery critical paths as
//!                                            folded-stack flamegraph lines
//! sps-inspect check    <dump.jsonl>...       parse every line; exit nonzero
//!                                            on the first malformed one
//! ```
//!
//! All analysis lives in `sps_observe::inspect`; this binary is argument
//! handling and exit codes only. Parse errors and usage problems exit
//! nonzero with a message on stderr.

use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

use sps_observe::inspect::{self, Dump};

/// Writes a report to stdout, tolerating a closed pipe (`| head`): a
/// consumer that stops reading is not an error worth panicking over.
fn emit(report: &str) {
    let _ = std::io::stdout().write_all(report.as_bytes());
}

const USAGE: &str = "usage: sps-inspect <summary|timeline|diff|flame|check> <file.jsonl>...
  summary  <dump>...   per-kind counts, time range, recovery cycles, SLO/anomaly roll-up
  timeline <trace>     per-machine / per-PE event timeline
  diff     <a> <b>     first divergent line and field; exit 1 when files differ
  flame    <trace>     recovery critical paths as folded-stack flamegraph lines
  check    <dump>...   parse every line; exit nonzero on the first malformed one";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("sps-inspect: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, files) = args.split_first().ok_or(USAGE)?;
    let need = |n: usize| -> Result<(), String> {
        if files.len() == n {
            Ok(())
        } else {
            Err(format!("`{cmd}` takes exactly {n} file(s)\n{USAGE}"))
        }
    };
    match cmd.as_str() {
        "summary" => {
            if files.is_empty() {
                return Err(format!("`summary` needs at least one file\n{USAGE}"));
            }
            for f in files {
                let dump = Dump::load(Path::new(f))?;
                emit(&inspect::summary(&dump));
            }
            Ok(ExitCode::SUCCESS)
        }
        "timeline" => {
            need(1)?;
            let dump = Dump::load(Path::new(&files[0]))?;
            emit(&inspect::timeline(&dump));
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            need(2)?;
            let a = Dump::load(Path::new(&files[0]))?;
            let b = Dump::load(Path::new(&files[1]))?;
            let (report, identical) = inspect::diff(&a, &b);
            emit(&report);
            Ok(if identical {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "flame" => {
            need(1)?;
            let dump = Dump::load(Path::new(&files[0]))?;
            emit(&inspect::flame(&dump));
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            if files.is_empty() {
                return Err(format!("`check` needs at least one file\n{USAGE}"));
            }
            let paths: Vec<&Path> = files.iter().map(Path::new).collect();
            let report = inspect::check(&paths)?;
            emit(&report);
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(format!("unknown command `{cmd}`\n{USAGE}")),
    }
}
