//! `sps-inspect` — offline analysis of the simulator's JSONL artifacts
//! (`--trace-out`, `--metrics-out`, `--health-out`, lineage exports).
//!
//! ```text
//! sps-inspect summary  <dump.jsonl>...       per-kind counts, time range,
//!                                            recovery cycles, audit-violation
//!                                            and SLO/anomaly roll-up
//! sps-inspect timeline <trace.jsonl>         per-machine / per-PE event timeline
//! sps-inspect diff     [--context N] <a.jsonl> <b.jsonl>
//!                                            first divergent line + field, with
//!                                            N lines of surrounding agreement
//!                                            (exit 1 when the files differ)
//! sps-inspect flame    <trace.jsonl>         recovery critical paths as
//!                                            folded-stack flamegraph lines
//! sps-inspect audit    <trace.jsonl>         replay the dump through the
//!                                            protocol auditor; print the report
//!                                            and first-violation backtrace
//!                                            (exit 1 on any violation)
//! sps-inspect check    <dump.jsonl>...       parse every line; exit nonzero
//!                                            on the first malformed one
//! ```
//!
//! All analysis lives in `sps_observe::inspect` and `sps_audit`; this
//! binary is argument handling and exit codes only. Parse errors and usage
//! problems exit nonzero with a message on stderr.

use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

use sps_observe::inspect::{self, Dump};

/// Writes a report to stdout, tolerating a closed pipe (`| head`): a
/// consumer that stops reading is not an error worth panicking over.
fn emit(report: &str) {
    let _ = std::io::stdout().write_all(report.as_bytes());
}

const USAGE: &str = "usage: sps-inspect <summary|timeline|diff|flame|audit|check> <file.jsonl>...
  summary  <dump>...   per-kind counts, time range, recovery cycles, audit/SLO/anomaly roll-up
  timeline <trace>     per-machine / per-PE event timeline
  diff     [--context N] <a> <b>
                       first divergent line and field, with N surrounding lines;
                       exit 1 when files differ
  flame    <trace>     recovery critical paths as folded-stack flamegraph lines
  audit    <trace>     replay through the protocol auditor; exit 1 on any violation
  check    <dump>...   parse every line; exit nonzero on the first malformed one";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("sps-inspect: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, files) = args.split_first().ok_or(USAGE)?;
    let need = |n: usize| -> Result<(), String> {
        if files.len() == n {
            Ok(())
        } else {
            Err(format!("`{cmd}` takes exactly {n} file(s)\n{USAGE}"))
        }
    };
    match cmd.as_str() {
        "summary" => {
            if files.is_empty() {
                return Err(format!("`summary` needs at least one file\n{USAGE}"));
            }
            for f in files {
                let dump = Dump::load(Path::new(f))?;
                emit(&inspect::summary(&dump));
            }
            Ok(ExitCode::SUCCESS)
        }
        "timeline" => {
            need(1)?;
            let dump = Dump::load(Path::new(&files[0]))?;
            emit(&inspect::timeline(&dump));
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            // `--context N` (or `--context=N`) before the two files.
            let mut context = 0usize;
            let mut rest: Vec<&String> = Vec::new();
            let mut it = files.iter();
            while let Some(a) = it.next() {
                if a == "--context" {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("`--context` needs a value\n{USAGE}"))?;
                    context = v
                        .parse()
                        .map_err(|_| format!("bad --context value `{v}`\n{USAGE}"))?;
                } else if let Some(v) = a.strip_prefix("--context=") {
                    context = v
                        .parse()
                        .map_err(|_| format!("bad --context value `{v}`\n{USAGE}"))?;
                } else {
                    rest.push(a);
                }
            }
            if rest.len() != 2 {
                return Err(format!("`diff` takes exactly 2 file(s)\n{USAGE}"));
            }
            let a = Dump::load(Path::new(rest[0]))?;
            let b = Dump::load(Path::new(rest[1]))?;
            let (report, identical) = inspect::diff_with_context(&a, &b, context);
            emit(&report);
            Ok(if identical {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "flame" => {
            need(1)?;
            let dump = Dump::load(Path::new(&files[0]))?;
            emit(&inspect::flame(&dump));
            Ok(ExitCode::SUCCESS)
        }
        "audit" => {
            need(1)?;
            let path = Path::new(&files[0]);
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let outcome =
                sps_audit::replay_dump(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            let mut report = outcome.report;
            if outcome.recorded_violations > 0 {
                report.push_str(&format!(
                    "recorded audit_violation lines in dump: {}\n",
                    outcome.recorded_violations
                ));
            }
            if let Some(first) = &outcome.first {
                report.push_str(&format!(
                    "first violation (after dump line {}): {}\n",
                    first.line, first.rendered
                ));
                if !first.backtrace.is_empty() {
                    report.push_str("causal backtrace (same entities, oldest first):\n");
                    for l in &first.backtrace {
                        report.push_str(&format!("  {l}\n"));
                    }
                }
            }
            emit(&report);
            Ok(if outcome.violations == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "check" => {
            if files.is_empty() {
                return Err(format!("`check` needs at least one file\n{USAGE}"));
            }
            let paths: Vec<&Path> = files.iter().map(Path::new).collect();
            let report = inspect::check(&paths)?;
            emit(&report);
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(format!("unknown command `{cmd}`\n{USAGE}")),
    }
}
