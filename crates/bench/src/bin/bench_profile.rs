//! DES self-profiler (requires `--features bench`).
//!
//! Steps representative simulations one event at a time through
//! [`HaSimulation::step_profiled`], attributing the host's wall-clock time
//! and heap allocations (via the counting global allocator) to each
//! [`Event`](sps_ha::Event) kind and to each HA protocol phase. Two
//! workloads run: a steady-state hybrid chain (no failures) and a
//! transient-failure cycle (switch-over and rollback), so the report
//! answers both "where does a healthy run spend its time" and "what does a
//! recovery cost the simulator".
//!
//! Profiling is host-side instrumentation around the event handler — the
//! simulated schedule is identical to an unprofiled run. The report is
//! written as JSON to `BENCH_profile.json` (or `--out <path>`); pass
//! `--quick` for shorter horizons.

use std::collections::BTreeMap;

use sps_bench::common::RunOpts;
use sps_cluster::{MachineId, SpikeWindow};
use sps_engine::SubjobId;
use sps_ha::{HaMode, HaSimulation};
use sps_sim::counting_alloc::CountingAllocator;
use sps_sim::SimTime;
use sps_workloads::eval_chain_job;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Accumulated cost of one label (event kind or protocol phase).
#[derive(Default, Clone, Copy)]
struct Bin {
    events: u64,
    wall_ns: u64,
    allocations: u64,
    alloc_bytes: u64,
}

impl Bin {
    fn add(&mut self, probe: &sps_sim::StepProbe) {
        self.events += 1;
        self.wall_ns += probe.wall_ns;
        self.allocations += probe.allocations;
        self.alloc_bytes += probe.alloc_bytes;
    }
}

/// One profiled workload: totals plus per-kind and per-phase breakdowns.
struct Profile {
    name: &'static str,
    total: Bin,
    by_kind: BTreeMap<&'static str, Bin>,
    by_phase: BTreeMap<&'static str, Bin>,
}

/// Steps `sim` to `horizon`, binning every handled event.
fn profile_run(name: &'static str, mut sim: HaSimulation, horizon: SimTime) -> Profile {
    let mut total = Bin::default();
    let mut by_kind: BTreeMap<&'static str, Bin> = BTreeMap::new();
    let mut by_phase: BTreeMap<&'static str, Bin> = BTreeMap::new();
    loop {
        if sim.now() >= horizon {
            break;
        }
        // The phase label is read before the step so classification can
        // never perturb the handler it measures.
        let phase = sim.world().protocol_phase();
        let Some((kind, probe)) = sim.step_profiled(|e| e.kind_name()) else {
            break;
        };
        total.add(&probe);
        by_kind.entry(kind).or_default().add(&probe);
        by_phase.entry(phase).or_default().add(&probe);
    }
    Profile {
        name,
        total,
        by_kind,
        by_phase,
    }
}

/// Healthy hybrid chain: every subjob protected, no failures injected.
fn steady_workload(seed: u64, horizon: SimTime) -> Profile {
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(seed)
        .build();
    sim.stop_sources_at(horizon);
    profile_run("steady_hybrid", sim, horizon)
}

/// Transient-failure cycle: a 1 s full-CPU spike on the protected primary
/// triggers switch-over, then rollback once its heartbeats resume.
fn recovery_workload(seed: u64, horizon: SimTime) -> Profile {
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(seed)
        .tune(|c| c.reliable_control = true)
        .build();
    sim.inject_spike_windows(
        MachineId(1),
        &[SpikeWindow {
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
            share: 1.0,
        }],
    );
    sim.stop_sources_at(horizon);
    profile_run("hybrid_recovery", sim, horizon)
}

/// Reads `--out <path>` / `--out=<path>` from argv (default
/// `BENCH_profile.json`).
fn out_path() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(p) = args.next() {
                return p;
            }
        } else if let Some(p) = a.strip_prefix("--out=") {
            return p.to_string();
        }
    }
    "BENCH_profile.json".to_string()
}

fn bin_json(label_key: &str, label: &str, b: &Bin) -> String {
    format!(
        "{{\"{label_key}\": \"{label}\", \"events\": {}, \"wall_ns\": {}, \
         \"allocations\": {}, \"alloc_bytes\": {}}}",
        b.events, b.wall_ns, b.allocations, b.alloc_bytes
    )
}

fn main() {
    let opts = RunOpts::parse();
    let out = out_path();
    let scale_name = opts.scale.pick("full", "quick");
    let horizon = SimTime::from_secs(opts.scale.pick(5, 2));

    eprintln!(
        "bench_profile: stepping 2 workloads to t={} s ({scale_name} scale, seed {})",
        horizon.as_millis_f64() / 1e3,
        opts.seed
    );
    let profiles = [
        steady_workload(opts.seed, horizon),
        recovery_workload(opts.seed, horizon),
    ];
    for p in &profiles {
        eprintln!(
            "  {}: {} events, {:.1} ms wall, {} allocations",
            p.name,
            p.total.events,
            p.total.wall_ns as f64 / 1e6,
            p.total.allocations
        );
        let mut kinds: Vec<_> = p.by_kind.iter().collect();
        kinds.sort_by_key(|(_, b)| std::cmp::Reverse(b.wall_ns));
        for (kind, b) in kinds.iter().take(5) {
            eprintln!(
                "    {kind}: {} events, {:.1} ms, {} allocations",
                b.events,
                b.wall_ns as f64 / 1e6,
                b.allocations
            );
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"sps-bench-profile-v1\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str("  \"workloads\": [\n");
    for (wi, p) in profiles.iter().enumerate() {
        json.push_str(&format!("    {{\"name\": \"{}\",\n", p.name));
        json.push_str(&format!(
            "     \"total\": {},\n",
            bin_json("label", "total", &p.total)
        ));
        json.push_str("     \"by_event_kind\": [\n");
        for (i, (kind, b)) in p.by_kind.iter().enumerate() {
            json.push_str(&format!(
                "       {}{}\n",
                bin_json("kind", kind, b),
                if i + 1 < p.by_kind.len() { "," } else { "" }
            ));
        }
        json.push_str("     ],\n");
        json.push_str("     \"by_protocol_phase\": [\n");
        for (i, (phase, b)) in p.by_phase.iter().enumerate() {
            json.push_str(&format!(
                "       {}{}\n",
                bin_json("phase", phase, b),
                if i + 1 < p.by_phase.len() { "," } else { "" }
            ));
        }
        json.push_str("     ]}");
        json.push_str(if wi + 1 < profiles.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: could not write {out}: {e}");
        std::process::exit(1);
    }
    let total_events: u64 = profiles.iter().map(|p| p.total.events).sum();
    println!("bench_profile: {total_events} events profiled — report written to {out}");
}
