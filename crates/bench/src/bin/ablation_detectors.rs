//! Detector ablation: heartbeat vs benchmarking vs trend prediction.
//! Pass `--quick` for a fast run.

use sps_bench::common::RunOpts;
use sps_bench::experiments::detectors::ablation_detectors;
use sps_bench::{audit_capture, health_capture, metrics_capture, trace_capture};

fn main() {
    let opts = RunOpts::parse();
    ablation_detectors(&opts.runner(), opts.scale, opts.seed).print();
    trace_capture::maybe_capture(opts.trace_out.as_deref(), opts.seed);
    metrics_capture::maybe_capture(opts.metrics_out.as_deref(), opts.seed);
    health_capture::maybe_capture(opts.health_out.as_deref(), opts.seed);
    audit_capture::maybe_capture(opts.audit_out.as_deref(), opts.seed);
}
