//! Detector ablation: heartbeat vs benchmarking vs trend prediction.
//! Pass `--quick` for a fast run.

use sps_bench::common::Scale;
use sps_bench::experiments::detectors::ablation_detectors;
use sps_bench::trace_capture;

fn main() {
    ablation_detectors(Scale::from_env(), 2010).print();
    trace_capture::maybe_capture(2010);
}
