//! Runs every figure harness in sequence (the full evaluation).
//! Pass `--quick` for a fast pass over all of them.

use sps_bench::common::Scale;
use sps_bench::experiments::*;
use sps_bench::trace_capture;

fn main() {
    let scale = Scale::from_env();
    let seed = 2010;
    fig01_03::fig01(scale, seed).print();
    fig01_03::fig02(scale, seed).print();
    fig01_03::fig03(scale, seed).print();
    fig04_05::fig04(scale, seed).print();
    fig04_05::fig05(scale, seed).print();
    fig06::fig06(scale, seed).print();
    fig07_08::fig07(scale, seed).print();
    fig07_08::fig08(scale, seed).print();
    fig09_11::fig09(scale, seed).print();
    fig09_11::fig10(scale, seed).print();
    fig09_11::fig11(scale, seed).print();
    fig12_13::fig12(scale, seed).print();
    fig12_13::fig13(scale, seed).print();
    ablation::ablation_checkpointing(scale, seed).print();
    detectors::ablation_detectors(scale, seed).print();
    hybrid_opts::ablation_hybrid_optimizations(scale, seed).print();
    trace_capture::maybe_capture(2010);
}
