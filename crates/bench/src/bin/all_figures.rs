//! Runs every figure harness (the full evaluation), fanning the figures
//! out over the cell runner. Pass `--quick` for a fast pass over all of
//! them and `--jobs N` to bound the worker-thread budget; the printed
//! output is byte-identical for every `N`.

use sps_bench::common::Experiment;
use sps_bench::common::RunOpts;
use sps_bench::experiments::*;
use sps_bench::runner::Runner;
use sps_bench::{audit_capture, health_capture, metrics_capture, trace_capture};

/// Every figure and ablation, in printing order.
#[allow(clippy::type_complexity)]
pub fn figure_cells<'a>(
    runner: &'a Runner,
    opts: &'a RunOpts,
) -> Vec<Box<dyn FnOnce() -> Experiment + Send + 'a>> {
    let (scale, seed) = (opts.scale, opts.seed);
    vec![
        Box::new(move || fig01_03::fig01(runner, scale, seed)),
        Box::new(move || fig01_03::fig02(runner, scale, seed)),
        Box::new(move || fig01_03::fig03(runner, scale, seed)),
        Box::new(move || fig04_05::fig04(runner, scale, seed)),
        Box::new(move || fig04_05::fig05(runner, scale, seed)),
        Box::new(move || fig06::fig06(runner, scale, seed)),
        Box::new(move || fig07_08::fig07(runner, scale, seed)),
        Box::new(move || fig07_08::fig08(runner, scale, seed)),
        Box::new(move || fig09_11::fig09(runner, scale, seed)),
        Box::new(move || fig09_11::fig10(runner, scale, seed)),
        Box::new(move || fig09_11::fig11(runner, scale, seed)),
        Box::new(move || fig12_13::fig12(runner, scale, seed)),
        Box::new(move || fig12_13::fig13(runner, scale, seed)),
        Box::new(move || ablation::ablation_checkpointing(runner, scale, seed)),
        Box::new(move || detectors::ablation_detectors(runner, scale, seed)),
        Box::new(move || hybrid_opts::ablation_hybrid_optimizations(runner, scale, seed)),
    ]
}

fn main() {
    let opts = RunOpts::parse();
    let runner = opts.runner();
    // All figures run as cells; results come back in submission order and
    // are printed only after every cell finished, so stdout is identical
    // to the serial pass regardless of --jobs.
    let experiments = runner.run_cells(figure_cells(&runner, &opts));
    for e in &experiments {
        e.print();
    }
    trace_capture::maybe_capture(opts.trace_out.as_deref(), opts.seed);
    metrics_capture::maybe_capture(opts.metrics_out.as_deref(), opts.seed);
    health_capture::maybe_capture(opts.health_out.as_deref(), opts.seed);
    audit_capture::maybe_capture(opts.audit_out.as_deref(), opts.seed);
}
