//! Throughput-vs-batch-size curve for the batched data plane.
//!
//! Runs two fixed Hybrid workloads — a fig04-shaped evaluation chain at
//! 1 K elements/s and a fig06-shaped 20-PE chain at 10 K elements/s — at
//! batch sizes {1, 4, 16, 64} and reports, per point, wall time, sink
//! throughput (simulated elements accepted per wall-clock second), and
//! DES events per wall-clock second. Batching coalesces same-tick
//! same-destination elements into range-stamped [`sps_engine::DataBatch`]
//! messages, so a larger batch size moves the same simulated workload
//! through fewer host-side events.
//!
//! The report is written as JSON to `BENCH_batch.json` (or `--out
//! <path>`); pass `--quick` for the reduced simulated span. The committed
//! baseline is CI's reference for the batch-64 regression gate.

use std::time::Instant;

use sps_engine::{Job, SubjobId};
use sps_ha::{HaMode, HaSimulation};
use sps_sim::SimTime;
use sps_workloads::{chain_job_with, eval_chain_job};

use sps_bench::common::RunOpts;

const BATCH_SIZES: [u32; 4] = [1, 4, 16, 64];

struct Workload {
    name: &'static str,
    make_job: fn() -> Job,
    rate: f64,
}

struct Point {
    batch: u32,
    wall_ms: f64,
    elements: u64,
    elements_per_sec: f64,
    des_events: u64,
    des_events_per_sec: f64,
}

/// Per-element CPU demand matching fig06's rate sweep: light enough that
/// 10 K elements/s stays below one machine's capacity.
fn fig06_job() -> Job {
    chain_job_with(15e-6, 20, 8, 4)
}

fn run_point(w: &Workload, batch: u32, sim_secs: u64, seed: u64) -> Point {
    let job = (w.make_job)();
    let n_subjobs = job.subjob_count();
    let mut builder = HaSimulation::builder(job)
        .mode(HaMode::Hybrid)
        .source_rate(w.rate)
        .seed(seed)
        .tune(|c| c.batch_size = batch);
    for sj in 0..n_subjobs as u32 {
        builder = builder.subjob_mode(SubjobId(sj), HaMode::Hybrid);
    }
    let mut sim = builder.build();
    let t0 = Instant::now();
    sim.run_until(SimTime::from_secs(sim_secs));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let report = sim.report();
    let wall_secs = (wall_ms / 1e3).max(1e-9);
    Point {
        batch,
        wall_ms,
        elements: report.sink_accepted,
        elements_per_sec: report.sink_accepted as f64 / wall_secs,
        des_events: report.events_processed,
        des_events_per_sec: report.events_processed as f64 / wall_secs,
    }
}

/// Reads `--out <path>` / `--out=<path>` from argv (default
/// `BENCH_batch.json`).
fn out_path() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(p) = args.next() {
                return p;
            }
        } else if let Some(p) = a.strip_prefix("--out=") {
            return p.to_string();
        }
    }
    "BENCH_batch.json".to_string()
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let opts = RunOpts::parse();
    let out = out_path();
    let sim_secs = opts.scale.pick(10, 3);
    let scale_name = opts.scale.pick("full", "quick");
    let workloads = [
        Workload {
            name: "fig04_chain",
            make_job: eval_chain_job,
            rate: 1_000.0,
        },
        Workload {
            name: "fig06_chain",
            make_job: fig06_job,
            rate: 10_000.0,
        },
    ];

    eprintln!(
        "bench_batch: {} workloads x batch sizes {:?} ({scale_name} scale, {sim_secs} simulated \
         seconds, seed {})",
        workloads.len(),
        BATCH_SIZES,
        opts.seed
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"sps-bench-batch-v1\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"sim_secs\": {sim_secs},\n"));
    json.push_str("  \"workloads\": [\n");
    for (wi, w) in workloads.iter().enumerate() {
        let points: Vec<Point> = BATCH_SIZES
            .iter()
            .map(|&b| run_point(w, b, sim_secs, opts.seed))
            .collect();
        let base = points[0].elements_per_sec;
        for p in &points {
            eprintln!(
                "  {} batch {:>2}: {:>7.0} ms, {} elements, {:>9.0} el/s ({:.2}x), {:>9.0} \
                 DES events/s",
                w.name,
                p.batch,
                p.wall_ms,
                p.elements,
                p.elements_per_sec,
                p.elements_per_sec / base.max(1e-9),
                p.des_events_per_sec,
            );
        }
        let comma = if wi + 1 < workloads.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rate\": {}, \"points\": [\n",
            w.name, w.rate
        ));
        for (i, p) in points.iter().enumerate() {
            let pcomma = if i + 1 < points.len() { "," } else { "" };
            json.push_str(&format!(
                "      {{\"batch\": {}, \"wall_ms\": {}, \"elements\": {}, \
                 \"elements_per_sec\": {}, \"des_events\": {}, \
                 \"des_events_per_sec\": {}}}{pcomma}\n",
                p.batch,
                json_f(p.wall_ms),
                p.elements,
                json_f(p.elements_per_sec),
                p.des_events,
                json_f(p.des_events_per_sec),
            ));
        }
        json.push_str(&format!("    ]}}{comma}\n"));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: could not write {out}: {e}");
        std::process::exit(1);
    }
    println!("bench_batch: report written to {out}");
}
