//! Ablation of the hybrid's §IV-B optimizations (pre-deployment, early
//! connections, read-state-on-rollback). Pass `--quick` for a fast run.

use sps_bench::common::Scale;
use sps_bench::experiments::hybrid_opts::ablation_hybrid_optimizations;
use sps_bench::trace_capture;

fn main() {
    ablation_hybrid_optimizations(Scale::from_env(), 2010).print();
    trace_capture::maybe_capture(2010);
}
