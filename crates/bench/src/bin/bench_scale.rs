//! Scaling-curve benchmark: sharded jobs across a machines × shards grid.
//!
//! For every cell of machines ∈ {83, 500, 1000, 5000} × shards ∈
//! {8, 256, 2048} (`--quick` keeps {83×8, 500×256}), one key-partitioned
//! sharded job (router + one subjob per shard, Zipf-skewed keys) runs for
//! a fixed simulated span, and the harness records:
//!
//! * **deterministic, world-derived values** — elements produced/accepted,
//!   DES events, peak logical queue weight, active network links, sparse
//!   network bytes, and the dense-matrix equivalent those machines would
//!   have needed — printed to **stdout**, which is byte-identical across
//!   `--jobs` values and repeat runs;
//! * **host-dependent values** — wall-clock, events/second, peak live heap
//!   (with `--features bench` at `--jobs 1`), and peak RSS — written only
//!   to the JSON report (`BENCH_scale.json`, or `--out <path>`).
//!
//! A final pair of runs compares recovery of the *hot* shard (the one
//! owning Zipf rank 1) against a *cold* shard under the same skew: the
//! failed shard recovers through its own per-shard checkpoint while every
//! other shard keeps its steady state.
//!
//! If a `BENCH_runner.json` sits in the working directory, the report also
//! embeds the runner's aggregate serial events/second and the ratio of the
//! 83-machine cell against it, for cross-harness throughput comparison.
//!
//! `--metrics-out` and `--audit-out` run the same instrumented capture
//! scenarios as the figure binaries (status on stderr, stdout unchanged).

use std::time::Instant;

use sps_bench::common::{peak_rss_bytes, RunOpts, Scale};
use sps_bench::{audit_capture, metrics_capture};
use sps_cluster::{FaultTopology, Network};
use sps_engine::SubjobId;
use sps_ha::{HaMode, HaSimulation, RateProfile, SjState};
use sps_sim::{SimDuration, SimTime};
use sps_workloads::{sharded_job, sharded_placement, single_failure, ZipfKeys};

#[cfg(feature = "bench")]
use sps_sim::counting_alloc::{self, CountingAllocator};

#[cfg(feature = "bench")]
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Per-element CPU demand of each shard operator (seconds).
const SHARD_DEMAND_SECS: f64 = 2e-5;
/// Shard operator state footprint (elements) carried by each checkpoint.
const SHARD_STATE_ELEMENTS: u64 = 64;
/// Source rate for every cell (elements/second).
const SOURCE_RATE: f64 = 2_000.0;

fn grid_for(machines: usize) -> FaultTopology {
    if machines <= 100 {
        FaultTopology::grid(machines, 4, 3)
    } else {
        FaultTopology::grid(machines, 20, 5)
    }
}

struct CellOut {
    machines: usize,
    shards: usize,
    subjobs: usize,
    produced: u64,
    accepted: u64,
    events: u64,
    peak_queue_weight: u64,
    net_active_links: usize,
    net_sparse_bytes: u64,
    dense_net_bytes: u64,
    wall_ms: f64,
    run_ms: f64,
    peak_live_bytes: Option<u64>,
}

fn run_cell(
    machines: usize,
    shards: usize,
    sim_secs: u64,
    seed: u64,
    attribute_heap: bool,
) -> CellOut {
    #[cfg(feature = "bench")]
    if attribute_heap {
        counting_alloc::reset_peak_live();
    }
    #[cfg(not(feature = "bench"))]
    let _ = attribute_heap;
    let t0 = Instant::now();
    let job = sharded_job(shards, SHARD_DEMAND_SECS, SHARD_STATE_ELEMENTS);
    let subjobs = job.subjob_count();
    let topology = grid_for(machines);
    let placement = sharded_placement(&job, machines, &topology);
    let zipf = ZipfKeys::new(1_000_000, 1.05);
    let mut sim = HaSimulation::builder(job)
        .topology(topology)
        .placement(placement)
        .source_profile(
            0,
            RateProfile::Constant {
                per_sec: SOURCE_RATE,
            },
            zipf.payload_gen(),
        )
        .seed(seed)
        .build();
    let t_run = Instant::now();
    sim.run_for(SimDuration::from_secs(sim_secs));
    let run_ms = t_run.elapsed().as_secs_f64() * 1e3;
    let produced = sim.world().sources()[0].produced();
    let events = sim.events_processed();
    let peak_queue_weight = sim.peak_queue_weight();
    let accepted = sim.report().sink_accepted;
    let network = sim.world().cluster().network();
    let net_active_links = network.active_busy_links();
    let net_sparse_bytes = network.sparse_state_bytes();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    #[cfg(feature = "bench")]
    let peak_live_bytes = attribute_heap.then(counting_alloc::peak_live_bytes);
    #[cfg(not(feature = "bench"))]
    let peak_live_bytes = None;
    CellOut {
        machines,
        shards,
        subjobs,
        produced,
        accepted,
        events,
        peak_queue_weight,
        net_active_links,
        net_sparse_bytes,
        dense_net_bytes: Network::dense_equivalent_bytes(machines),
        wall_ms,
        run_ms,
        peak_live_bytes,
    }
}

/// Per-element CPU demand in the recovery comparison — heavy enough that
/// reprocessing a hot shard's backlog takes visible sim-time.
const RECOVERY_DEMAND_SECS: f64 = 1e-3;

struct RecoveryOut {
    label: &'static str,
    shard: u32,
    subjob: u32,
    /// Sink accepts by one sim-second after failure inception.
    accepted_1s: u64,
    detected_ms: f64,
    ready_ms: f64,
    other_shards_normal: bool,
}

/// Fails the primary machine of one shard of an 83-machine, 8-shard cell
/// under heavy Zipf skew (`shard = None` runs the failure-free baseline).
///
/// The shards run in passive-standby mode with a long checkpoint interval,
/// so recovery goes through the per-shard checkpoint path: the hot shard
/// must retransmit and reprocess everything since its last sweep-visit
/// while the cold shard replays almost nothing. Because the healthy
/// shards keep feeding the shared sink throughout, the comparison metric
/// is the *accepted-element deficit* against the baseline at a fixed
/// instant (one sim-second after inception) — a deterministic,
/// world-derived number that scales with the failed shard's load.
fn run_recovery(label: &'static str, shard: Option<u32>, seed: u64) -> RecoveryOut {
    let shards = 8usize;
    let job = sharded_job(shards, RECOVERY_DEMAND_SECS, SHARD_STATE_ELEMENTS);
    let subjob = shard.map(|s| job.shard_subjob(s as usize));
    let topology = grid_for(83);
    let placement = sharded_placement(&job, 83, &topology);
    let zipf = ZipfKeys::new(100_000, 1.2);
    let mut sim = HaSimulation::builder(job)
        .topology(topology)
        .placement(placement.clone())
        .mode(HaMode::Passive)
        .tune(|c| c.checkpoint_interval = SimDuration::from_secs(2))
        .source_profile(
            0,
            RateProfile::Constant {
                per_sec: SOURCE_RATE,
            },
            zipf.payload_gen(),
        )
        .seed(seed)
        .log_sink_accepts(true)
        .build();
    let failure_at = SimTime::from_secs(5);
    if let Some(sj) = subjob {
        sim.inject_spike_windows(
            placement.primaries[sj.0 as usize],
            &single_failure(failure_at, SimDuration::from_secs(10)),
        );
    }
    sim.run_until(failure_at + SimDuration::from_secs(1));
    let other_shards_normal = (0..shards)
        .filter(|&s| Some(s as u32) != shard)
        .all(|s| sim.world().subjob(SubjobId(1 + s as u32)).state == SjState::Normal);
    let timeline = subjob.and_then(|sj| sim.recovery_timeline(sj, failure_at));
    RecoveryOut {
        label,
        shard: shard.unwrap_or(0),
        subjob: subjob.map_or(0, |sj| sj.0),
        accepted_1s: sim.report().sink_accepted,
        detected_ms: timeline.as_ref().map_or(0.0, |t| t.detected_ms),
        ready_ms: timeline.as_ref().map_or(0.0, |t| t.ready_ms),
        other_shards_normal,
    }
}

/// Reads `--out <path>` / `--out=<path>` from argv (default
/// `BENCH_scale.json`).
fn out_path() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(p) = args.next() {
                return p;
            }
        } else if let Some(p) = a.strip_prefix("--out=") {
            return p.to_string();
        }
    }
    "BENCH_scale.json".to_string()
}

/// Aggregate serial events/second from a `BENCH_runner.json` in the
/// working directory: the sum of per-figure `events` over the sum of their
/// `wall_ms`, skipping analytic figures (which report no `events`).
fn runner_reference_eps() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_runner.json").ok()?;
    let field = |line: &str, key: &str| -> Option<f64> {
        let at = line.find(key)? + key.len();
        let rest = &line[at..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    let (mut events, mut wall_ms) = (0.0, 0.0);
    for line in text.lines() {
        if let (Some(e), Some(w)) = (field(line, "\"events\": "), field(line, "\"wall_ms\": ")) {
            events += e;
            wall_ms += w;
        }
    }
    (wall_ms > 0.0).then_some(events / (wall_ms / 1e3))
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn json_opt_u64(x: Option<u64>) -> String {
    x.map_or_else(|| "null".to_string(), |v| v.to_string())
}

fn main() {
    let opts = RunOpts::parse();
    let out = out_path();
    // --quick trims the *grid*, not the simulated span: the per-cell cost
    // is small (~1 s wall for the worst cell), and keeping the span makes
    // the quick cells' events/sec directly comparable with the committed
    // full-scale BENCH_scale.json — which is what CI's regression gate
    // does. A shorter span would under-read eps (startup work amortizes
    // over fewer events) and trip the gate spuriously.
    let sim_secs = 10;
    let machines_axis: &[usize] = &[83, 500, 1_000, 5_000];
    let shards_axis: &[usize] = &[8, 256, 2_048];
    let cells: Vec<(usize, usize)> = match opts.scale {
        Scale::Full => machines_axis
            .iter()
            .flat_map(|&m| shards_axis.iter().map(move |&s| (m, s)))
            .collect(),
        Scale::Quick => vec![(83, 8), (500, 256)],
    };
    // Per-cell heap attribution needs the cells to run alone in the
    // process; with --jobs > 1 the counters interleave, so they are
    // reported as null.
    let attribute_heap = opts.jobs == 1;
    eprintln!(
        "bench_scale: {} cells ({} scale, seed {}, --jobs {}, sim {sim_secs}s/cell)",
        cells.len(),
        opts.scale.pick("full", "quick"),
        opts.seed,
        opts.jobs
    );

    let runner = opts.runner();
    let seed = opts.seed;
    let results: Vec<CellOut> = runner.map(cells, |(m, s)| {
        run_cell(m, s, sim_secs, seed, attribute_heap)
    });

    println!("== bench_scale — sharded scale-out curve ==");
    println!();
    println!(
        "{:>8} {:>7} {:>8} {:>9} {:>9} {:>11} {:>10} {:>13} {:>15}",
        "machines",
        "shards",
        "subjobs",
        "produced",
        "accepted",
        "peak_queue",
        "net_links",
        "net_bytes",
        "dense_net_bytes"
    );
    for c in &results {
        println!(
            "{:>8} {:>7} {:>8} {:>9} {:>9} {:>11} {:>10} {:>13} {:>15}",
            c.machines,
            c.shards,
            c.subjobs,
            c.produced,
            c.accepted,
            c.peak_queue_weight,
            c.net_active_links,
            c.net_sparse_bytes,
            c.dense_net_bytes
        );
        eprintln!(
            "  {}x{}: {:.0} ms, {} events{}",
            c.machines,
            c.shards,
            c.wall_ms,
            c.events,
            match c.peak_live_bytes {
                Some(b) => format!(", peak heap {:.1} MiB", b as f64 / (1024.0 * 1024.0)),
                None => String::new(),
            }
        );
    }
    println!();

    let zipf = ZipfKeys::new(100_000, 1.2);
    let (hot, cold) = (zipf.hot_shard(8), zipf.cold_shard(8));
    let recoveries: Vec<RecoveryOut> = runner.map(
        vec![("base", None), ("hot", Some(hot)), ("cold", Some(cold))],
        |(label, shard)| run_recovery(label, shard, seed),
    );
    let baseline = recoveries[0].accepted_1s;
    println!("recovery under zipf keys (s=1.2, passive standbys, 2s checkpoints, 83 machines x 8 shards):");
    println!("  baseline (no failure) accepted by +1s: {baseline}");
    for r in recoveries.iter().skip(1) {
        println!(
            "  {:<4} shard {} (subjob {}): detect {:.1} ms, ready {:.1} ms, \
             deficit at +1s: {} elements, other shards steady: {}",
            r.label,
            r.shard,
            r.subjob,
            r.detected_ms,
            r.ready_ms,
            baseline.saturating_sub(r.accepted_1s),
            r.other_shards_normal
        );
    }
    println!();

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let runner_eps = runner_reference_eps();
    let cell_83 = results.iter().find(|c| c.machines == 83 && c.shards == 8);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"sps-bench-scale-v1\",\n");
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        opts.scale.pick("full", "quick")
    ));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"jobs\": {},\n", opts.jobs));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"sim_secs_per_cell\": {sim_secs},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let eps = c.events as f64 / (c.run_ms / 1e3).max(1e-9);
        json.push_str(&format!(
            "    {{\"machines\": {}, \"shards\": {}, \"subjobs\": {}, \
             \"produced\": {}, \"accepted\": {}, \"events\": {}, \
             \"peak_queue_weight\": {}, \"net_active_links\": {}, \
             \"net_sparse_bytes\": {}, \"dense_net_bytes\": {}, \
             \"wall_ms\": {}, \"run_ms\": {}, \"events_per_sec\": {}, \
             \"peak_live_bytes\": {}, \"heap_per_machine_bytes\": {}}}{comma}\n",
            c.machines,
            c.shards,
            c.subjobs,
            c.produced,
            c.accepted,
            c.events,
            c.peak_queue_weight,
            c.net_active_links,
            c.net_sparse_bytes,
            c.dense_net_bytes,
            json_f(c.wall_ms),
            json_f(c.run_ms),
            json_f(eps),
            json_opt_u64(c.peak_live_bytes),
            json_opt_u64(c.peak_live_bytes.map(|b| b / c.machines as u64)),
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"recovery\": {\n");
    json.push_str(&format!(
        "    \"baseline_accepted_1s\": {baseline},\n    \"cases\": [\n"
    ));
    let cases: Vec<&RecoveryOut> = recoveries.iter().skip(1).collect();
    for (i, r) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        json.push_str(&format!(
            "      {{\"which\": \"{}\", \"shard\": {}, \"subjob\": {}, \
             \"detected_ms\": {}, \"ready_ms\": {}, \"accepted_1s\": {}, \
             \"deficit_elements\": {}, \"other_shards_normal\": {}}}{comma}\n",
            r.label,
            r.shard,
            r.subjob,
            json_f(r.detected_ms),
            json_f(r.ready_ms),
            r.accepted_1s,
            baseline.saturating_sub(r.accepted_1s),
            r.other_shards_normal,
        ));
    }
    json.push_str("    ]\n  },\n");
    json.push_str(&format!(
        "  \"peak_rss_bytes\": {},\n",
        json_opt_u64(peak_rss_bytes())
    ));
    json.push_str(&format!(
        "  \"runner_reference_events_per_sec\": {},\n",
        runner_eps.map_or_else(|| "null".to_string(), json_f)
    ));
    json.push_str(&format!(
        "  \"cell_83x8_vs_runner_ratio\": {}\n",
        match (runner_eps, cell_83) {
            (Some(r), Some(c)) if r > 0.0 =>
                json_f(c.events as f64 / (c.run_ms / 1e3).max(1e-9) / r),
            _ => "null".to_string(),
        }
    ));
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: could not write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("bench_scale: report written to {out}");
    metrics_capture::maybe_capture(opts.metrics_out.as_deref(), opts.seed);
    audit_capture::maybe_capture(opts.audit_out.as_deref(), opts.seed);
}
