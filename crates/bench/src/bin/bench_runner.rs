//! Wall-clock benchmark baselines for the figure harnesses.
//!
//! Two passes over every figure and ablation:
//!
//! 1. a **serial instrumented** pass — each figure runs alone on one
//!    thread, timed individually, with the DES counters
//!    ([`sps_sim::stats`]) delimited around it so the report attributes
//!    events processed, events/second, and peak event-queue depth to that
//!    figure;
//! 2. a **parallel** pass — the same figures submitted as cells to the
//!    runner with the `--jobs` budget and timed as a whole (per-figure
//!    counters would interleave across threads, so only the total is
//!    measured).
//!
//! The report is written as JSON to `BENCH_runner.json` (or `--out
//! <path>`) with a serial-vs-parallel speedup summary, and a one-line
//! summary is printed. Pass `--quick` for the reduced figure scale.

use std::time::Instant;

use sps_bench::common::{Experiment, RunOpts, Scale};
use sps_bench::experiments::*;
use sps_bench::runner::Runner;

// With `--features bench`, the serial pass also runs under the counting
// global allocator and reports allocations/event per figure; without it,
// the field is `null` in the report.
#[cfg(feature = "bench")]
use sps_sim::counting_alloc::{self, CountingAllocator};

#[cfg(feature = "bench")]
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

type FigureFn = fn(&Runner, Scale, u64) -> Experiment;

/// Every figure and ablation, in the `all_figures` printing order.
fn figure_list() -> Vec<(&'static str, FigureFn)> {
    vec![
        ("fig01", fig01_03::fig01),
        ("fig02", fig01_03::fig02),
        ("fig03", fig01_03::fig03),
        ("fig04", fig04_05::fig04),
        ("fig05", fig04_05::fig05),
        ("fig06", fig06::fig06),
        ("fig07", fig07_08::fig07),
        ("fig08", fig07_08::fig08),
        ("fig09", fig09_11::fig09),
        ("fig10", fig09_11::fig10),
        ("fig11", fig09_11::fig11),
        ("fig12", fig12_13::fig12),
        ("fig13", fig12_13::fig13),
        ("ablation_checkpointing", ablation::ablation_checkpointing),
        ("ablation_detectors", detectors::ablation_detectors),
        (
            "ablation_hybrid_optimizations",
            hybrid_opts::ablation_hybrid_optimizations,
        ),
    ]
}

struct FigureBench {
    name: &'static str,
    wall_ms: f64,
    /// True for closed-form figures (fig01–03) that run no simulation:
    /// they process zero DES events, so an events/second for them is
    /// meaningless and the report omits those fields entirely.
    analytic: bool,
    events: u64,
    events_per_sec: f64,
    peak_queue_depth: u64,
    /// Heap allocations per DES event over the figure's serial run.
    /// `None` without `--features bench` (no counting allocator installed).
    allocs_per_event: Option<f64>,
    /// Live-heap high-water mark during the figure's serial run (the
    /// counting allocator's peak is reset before each figure). `None`
    /// without `--features bench`.
    peak_live_bytes: Option<u64>,
}

/// Reads `--out <path>` / `--out=<path>` from argv (default
/// `BENCH_runner.json`).
fn out_path() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(p) = args.next() {
                return p;
            }
        } else if let Some(p) = a.strip_prefix("--out=") {
            return p.to_string();
        }
    }
    "BENCH_runner.json".to_string()
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let opts = RunOpts::parse();
    let out = out_path();
    let figures = figure_list();
    let scale_name = opts.scale.pick("full", "quick");

    // Pass 1: serial, instrumented per figure.
    eprintln!(
        "bench_runner: serial pass over {} figures ({scale_name} scale, seed {})",
        figures.len(),
        opts.seed
    );
    let serial = Runner::serial();
    let mut per_figure: Vec<FigureBench> = Vec::new();
    let mut serial_total_ms = 0.0;
    for &(name, f) in &figures {
        sps_sim::stats::take(); // delimit this figure's counter window
        #[cfg(feature = "bench")]
        let alloc0 = {
            counting_alloc::reset_peak_live();
            counting_alloc::allocations()
        };
        let t0 = Instant::now();
        let _ = f(&serial, opts.scale, opts.seed);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = sps_sim::stats::take();
        #[cfg(feature = "bench")]
        let (allocs_per_event, peak_live_bytes) = (
            Some(
                (counting_alloc::allocations() - alloc0) as f64
                    / (stats.events_processed as f64).max(1.0),
            ),
            Some(counting_alloc::peak_live_bytes()),
        );
        #[cfg(not(feature = "bench"))]
        let (allocs_per_event, peak_live_bytes) = (None, None);
        serial_total_ms += wall_ms;
        per_figure.push(FigureBench {
            name,
            wall_ms,
            analytic: stats.events_processed == 0,
            events: stats.events_processed,
            events_per_sec: stats.events_processed as f64 / (wall_ms / 1e3).max(1e-9),
            peak_queue_depth: stats.peak_queue_depth,
            allocs_per_event,
            peak_live_bytes,
        });
        if stats.events_processed == 0 {
            eprintln!("  {name}: {wall_ms:.0} ms, analytic (no simulation)");
        } else {
            eprintln!(
                "  {name}: {wall_ms:.0} ms, {} events, peak queue {}",
                stats.events_processed, stats.peak_queue_depth
            );
        }
    }

    // Pass 2: the same figures as parallel cells, timed as a whole.
    eprintln!("bench_runner: parallel pass with --jobs {}", opts.jobs);
    let runner = opts.runner();
    let t0 = Instant::now();
    let cells: Vec<Box<dyn FnOnce() -> Experiment + Send + '_>> = figures
        .iter()
        .map(|&(_, f)| {
            let r = &runner;
            Box::new(move || f(r, opts.scale, opts.seed))
                as Box<dyn FnOnce() -> Experiment + Send + '_>
        })
        .collect();
    let _ = runner.run_cells(cells);
    let parallel_total_ms = t0.elapsed().as_secs_f64() * 1e3;
    let speedup = serial_total_ms / parallel_total_ms.max(1e-9);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // A 1-core host (or --jobs 1) serializes the "parallel" pass, so its
    // speedup only measures runner overhead; say so in the report.
    let parallel_note = if host_cores.min(opts.jobs) <= 1 {
        Some(format!(
            "parallel pass ran on {} effective core(s) (host has {host_cores}, --jobs {}); \
             speedup reflects runner overhead, not parallelism",
            host_cores.min(opts.jobs),
            opts.jobs
        ))
    } else {
        None
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"sps-bench-runner-v1\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"jobs\": {},\n", opts.jobs));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"available_parallelism\": {host_cores},\n"));
    json.push_str("  \"figures\": [\n");
    for (i, b) in per_figure.iter().enumerate() {
        let comma = if i + 1 < per_figure.len() { "," } else { "" };
        if b.analytic {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {}, \"analytic\": true, \
                 \"peak_queue_depth\": {}}}{comma}\n",
                b.name,
                json_f(b.wall_ms),
                b.peak_queue_depth,
            ));
        } else {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {}, \"events\": {}, \
                 \"events_per_sec\": {}, \"peak_queue_depth\": {}, \
                 \"allocs_per_event\": {}, \"peak_live_bytes\": {}}}{comma}\n",
                b.name,
                json_f(b.wall_ms),
                b.events,
                json_f(b.events_per_sec),
                b.peak_queue_depth,
                match b.allocs_per_event {
                    Some(a) => json_f(a),
                    None => "null".to_string(),
                },
                match b.peak_live_bytes {
                    Some(p) => p.to_string(),
                    None => "null".to_string(),
                },
            ));
        }
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"serial_total_ms\": {},\n",
        json_f(serial_total_ms)
    ));
    json.push_str(&format!(
        "  \"parallel_total_ms\": {},\n",
        json_f(parallel_total_ms)
    ));
    json.push_str(&format!("  \"speedup\": {},\n", json_f(speedup)));
    json.push_str(&format!(
        "  \"peak_rss_bytes\": {},\n",
        match sps_bench::common::peak_rss_bytes() {
            Some(rss) => rss.to_string(),
            None => "null".to_string(),
        }
    ));
    json.push_str(&format!(
        "  \"parallel_note\": {}\n",
        match &parallel_note {
            Some(note) => format!("\"{note}\""),
            None => "null".to_string(),
        }
    ));
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: could not write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "bench_runner: serial {serial_total_ms:.0} ms, parallel (--jobs {}) \
         {parallel_total_ms:.0} ms, speedup {speedup:.2}x — report written to {out}",
        opts.jobs
    );
    if let Some(note) = &parallel_note {
        println!("bench_runner: note: {note}");
    }
}
