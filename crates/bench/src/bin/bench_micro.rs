//! Allocation-budget micro-benchmarks (requires `--features bench`).
//!
//! Runs every figure serially under the counting global allocator
//! ([`sps_sim::counting_alloc`]) and reports, per figure, wall time,
//! events, events/second, heap allocations, and allocations/event. A
//! second section measures checkpoint-capture cost directly: an
//! [`OutputQueue`] is filled to depths 10² and 10⁴ and `snapshot()` is
//! timed at each, demonstrating that capture clones chunk pointers (a
//! single spine allocation regardless of depth) rather than elements.
//!
//! The report is written as JSON to `BENCH_micro.json` (or `--out
//! <path>`); pass `--quick` for the reduced figure scale.

use std::hint::black_box;
use std::time::Instant;

use sps_bench::common::{Experiment, RunOpts, Scale};
use sps_bench::experiments::*;
use sps_bench::runner::Runner;
use sps_engine::{OutputQueue, Payload, StreamId};
use sps_sim::counting_alloc::{self, CountingAllocator};
use sps_sim::SimTime;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

type FigureFn = fn(&Runner, Scale, u64) -> Experiment;

/// Every figure and ablation, in the `all_figures` printing order.
fn figure_list() -> Vec<(&'static str, FigureFn)> {
    vec![
        ("fig01", fig01_03::fig01),
        ("fig02", fig01_03::fig02),
        ("fig03", fig01_03::fig03),
        ("fig04", fig04_05::fig04),
        ("fig05", fig04_05::fig05),
        ("fig06", fig06::fig06),
        ("fig07", fig07_08::fig07),
        ("fig08", fig07_08::fig08),
        ("fig09", fig09_11::fig09),
        ("fig10", fig09_11::fig10),
        ("fig11", fig09_11::fig11),
        ("fig12", fig12_13::fig12),
        ("fig13", fig12_13::fig13),
        ("ablation_checkpointing", ablation::ablation_checkpointing),
        ("ablation_detectors", detectors::ablation_detectors),
        (
            "ablation_hybrid_optimizations",
            hybrid_opts::ablation_hybrid_optimizations,
        ),
    ]
}

struct FigureAllocs {
    name: &'static str,
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
    allocations: u64,
    alloc_bytes: u64,
    allocs_per_event: f64,
}

struct CaptureCost {
    depth: usize,
    ns_per_capture: f64,
    allocs_per_capture: f64,
}

/// Fills an output queue to `depth` retained elements, then times repeated
/// checkpoint captures. The queue is mutated between captures (one
/// produce) so the copy-on-write tail-chunk clone is part of the measured
/// steady state, exactly as in a live checkpoint cadence.
fn capture_cost(depth: usize) -> CaptureCost {
    let mut q: OutputQueue<()> = OutputQueue::new(StreamId(0));
    for i in 0..depth {
        q.produce(Payload::new(i as u64, 0.0), SimTime::ZERO);
    }
    let captures = 10_000;
    // Warm up: the first capture shares chunks, the first produce after it
    // pays the one-off tail-chunk copy.
    black_box(q.snapshot());
    q.produce(Payload::new(0, 0.0), SimTime::ZERO);
    let alloc0 = counting_alloc::allocations();
    let t0 = Instant::now();
    for i in 0..captures {
        black_box(q.snapshot());
        q.produce(Payload::new(i, 1.0), SimTime::ZERO);
    }
    let elapsed = t0.elapsed();
    let allocs = counting_alloc::allocations() - alloc0;
    CaptureCost {
        depth,
        ns_per_capture: elapsed.as_nanos() as f64 / captures as f64,
        allocs_per_capture: allocs as f64 / captures as f64,
    }
}

/// Reads `--out <path>` / `--out=<path>` from argv (default
/// `BENCH_micro.json`).
fn out_path() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(p) = args.next() {
                return p;
            }
        } else if let Some(p) = a.strip_prefix("--out=") {
            return p.to_string();
        }
    }
    "BENCH_micro.json".to_string()
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let opts = RunOpts::parse();
    let out = out_path();
    let figures = figure_list();
    let scale_name = opts.scale.pick("full", "quick");

    eprintln!(
        "bench_micro: counting allocations over {} figures ({scale_name} scale, seed {})",
        figures.len(),
        opts.seed
    );
    let serial = Runner::serial();
    let mut per_figure: Vec<FigureAllocs> = Vec::new();
    for &(name, f) in &figures {
        sps_sim::stats::take(); // delimit this figure's counter window
        let alloc0 = counting_alloc::allocations();
        let bytes0 = counting_alloc::allocated_bytes();
        let t0 = Instant::now();
        let _ = f(&serial, opts.scale, opts.seed);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = sps_sim::stats::take();
        let allocations = counting_alloc::allocations() - alloc0;
        let alloc_bytes = counting_alloc::allocated_bytes() - bytes0;
        let allocs_per_event = allocations as f64 / (stats.events_processed as f64).max(1.0);
        eprintln!(
            "  {name}: {wall_ms:.0} ms, {} events, {allocations} allocations \
             ({allocs_per_event:.4}/event)",
            stats.events_processed
        );
        per_figure.push(FigureAllocs {
            name,
            wall_ms,
            events: stats.events_processed,
            events_per_sec: stats.events_processed as f64 / (wall_ms / 1e3).max(1e-9),
            allocations,
            alloc_bytes,
            allocs_per_event,
        });
    }

    eprintln!("bench_micro: checkpoint-capture cost vs queue depth");
    let captures: Vec<CaptureCost> = [100, 10_000].iter().map(|&d| capture_cost(d)).collect();
    for c in &captures {
        eprintln!(
            "  depth {}: {:.0} ns/capture, {:.3} allocations/capture",
            c.depth, c.ns_per_capture, c.allocs_per_capture
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"sps-bench-micro-v1\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str("  \"figures\": [\n");
    for (i, b) in per_figure.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {}, \"events\": {}, \
             \"events_per_sec\": {}, \"allocations\": {}, \"alloc_bytes\": {}, \
             \"allocs_per_event\": {}}}{}\n",
            b.name,
            json_f(b.wall_ms),
            b.events,
            json_f(b.events_per_sec),
            b.allocations,
            b.alloc_bytes,
            json_f(b.allocs_per_event),
            if i + 1 < per_figure.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"checkpoint_capture\": [\n");
    for (i, c) in captures.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"depth\": {}, \"ns_per_capture\": {}, \"allocs_per_capture\": {}}}{}\n",
            c.depth,
            json_f(c.ns_per_capture),
            json_f(c.allocs_per_capture),
            if i + 1 < captures.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: could not write {out}: {e}");
        std::process::exit(1);
    }
    let total_events: u64 = per_figure.iter().map(|b| b.events).sum();
    let total_allocs: u64 = per_figure.iter().map(|b| b.allocations).sum();
    println!(
        "bench_micro: {total_events} events, {total_allocs} allocations \
         ({:.4}/event) — report written to {out}",
        total_allocs as f64 / (total_events as f64).max(1.0)
    );
}
