//! The `--trace-out` flight-recorder capture: an instrumented hybrid run
//! whose JSONL dump exercises every trace event kind.
//!
//! Figure binaries call [`maybe_capture`] after printing their tables with
//! the destination from [`crate::common::RunOpts`] (`--trace-out <path>` or
//! `SPS_TRACE_OUT`); when one is set, they run [`capture_hybrid_trace`] and
//! write the dump there. The capture run is separate from the figure runs,
//! so figure numbers are never produced from an instrumented simulation.

use std::path::Path;

use sps_cluster::{ChaosPlan, FaultProfile, MachineId, SpikeWindow};
use sps_engine::SubjobId;
use sps_ha::{BenchmarkConfig, HaMode, HaSimulation};
use sps_sim::SimTime;
use sps_trace::SharedRecorder;
use sps_workloads::eval_chain_job;

/// Runs a fully instrumented hybrid scenario and returns the recorder.
///
/// The scenario is chosen to touch every [`sps_trace::TraceEvent`] kind in
/// ~12 simulated seconds:
///
/// * steady traffic → element send/recv, acks, checkpoints, heartbeats,
///   queue high-water marks, periodic machine/PE snapshots;
/// * a benchmark detector on the protected machine → probes and verdicts;
/// * a 1 s full-CPU spike (10 missed heartbeats, below the lowered
///   fail-stop threshold of 15) → failure inject/detect, switch-over, then
///   rollback once the primary's heartbeat replies resume;
/// * a fail-stop → element drops at the dead machine, then promotion after
///   15 missed heartbeats;
/// * a chaos loss/duplication window under the reliable control layer →
///   chaos steps, net drops, duplicated deliveries, and retransmissions.
pub fn capture_hybrid_trace(seed: u64) -> SharedRecorder {
    let recorder = SharedRecorder::default();
    let job = eval_chain_job();
    let chaos = ChaosPlan::default()
        .loss_window(
            SimTime::from_millis(2_500),
            SimTime::from_millis(3_500),
            FaultProfile::loss(0.05).with_duplication(0.05),
        )
        // Heavy loss on the checkpoint link (primary m1 → secondary m6)
        // guarantees at least one reliable-layer retransmission.
        .link_window(
            SimTime::from_millis(2_500),
            SimTime::from_millis(3_500),
            MachineId(1),
            MachineId(6),
            FaultProfile::loss(0.5),
        );
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(seed)
        .tune(|c| {
            c.failstop_miss_threshold = 15;
            c.reliable_control = true;
        })
        .chaos(chaos)
        .trace_sink(Box::new(recorder.clone()))
        .build();
    sim.add_benchmark_detector(MachineId(1), BenchmarkConfig::default());
    // Transient failure: switch-over on the first miss, rollback on recovery.
    sim.inject_spike_windows(
        MachineId(1),
        &[SpikeWindow {
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
            share: 1.0,
        }],
    );
    // Permanent failure: in-flight elements drop, then the secondary is
    // promoted after 15 missed heartbeats.
    sim.fail_stop_at(MachineId(1), SimTime::from_secs(4));
    sim.stop_sources_at(SimTime::from_secs(8));
    sim.run_until(SimTime::from_secs(10));
    recorder
}

/// If a trace destination was requested, runs the capture scenario and
/// writes its JSONL dump there, reporting the record count on stdout.
pub fn maybe_capture(path: Option<&Path>, seed: u64) {
    let Some(path) = path else {
        return;
    };
    let recorder = capture_hybrid_trace(seed);
    let (records, evicted) = recorder.with(|r| (r.len(), r.evicted()));
    match std::fs::File::create(path) {
        Ok(mut f) => {
            if let Err(e) = recorder.export_jsonl(&mut f) {
                eprintln!("warning: could not write trace to {}: {e}", path.display());
            } else {
                println!(
                    "trace: {records} records written to {} ({evicted} evicted)",
                    path.display()
                );
            }
        }
        Err(e) => eprintln!("warning: could not create {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn capture_covers_every_event_kind() {
        let recorder = capture_hybrid_trace(2010);
        let kinds: BTreeSet<&'static str> =
            recorder.with(|r| r.records().map(|rec| rec.event.kind()).collect());
        for kind in [
            "element_send",
            "element_recv",
            "element_drop",
            "ack",
            "checkpoint_start",
            "checkpoint_sent",
            "checkpoint_stored",
            "heartbeat_ping",
            "heartbeat_pong",
            "heartbeat_miss",
            "bench_probe",
            "bench_verdict",
            "failure_inject",
            "failure_detect",
            "recovery",
            "queue_high_water",
            "machine_snapshot",
            "pe_snapshot",
            "net_drop",
            "net_duplicate",
            "retransmit",
            "chaos_phase",
            "audit_meta",
            "subjob_meta",
            "sink_deliver",
            "checkpoint_covered",
            "ack_sent",
            "epoch_change",
            "standby_provision",
        ] {
            assert!(kinds.contains(kind), "missing event kind {kind}: {kinds:?}");
        }
    }
}
