//! Deterministic parallel execution of independent experiment cells.
//!
//! Every figure harness is a loop over independent `(config, seed)`
//! simulation cells; each cell owns its own [`sps_ha::HaSimulation`], so
//! cells never share mutable state and can run on any thread. The runner
//! fans a cell list out over `--jobs N` worker threads and hands the
//! results back **in submission order**, so tables, notes, and CSV exports
//! are byte-identical to a serial run regardless of thread count.
//!
//! Two properties keep this simple and safe with zero dependencies:
//!
//! * **Caller participation** — the thread calling [`Runner::map`] always
//!   works through the same claim loop as the helpers. A map that gets no
//!   helper budget is exactly the serial `for` loop it replaced.
//! * **A shared helper budget** — the runner owns `jobs - 1` helper slots.
//!   Nested maps (a figure cell fanning out its own sub-cells while
//!   `all_figures` fans out figures) take whatever is left — usually
//!   nothing — and degrade to serial instead of oversubscribing or
//!   deadlocking.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A work-stealing fan-out over independent experiment cells.
#[derive(Debug)]
pub struct Runner {
    jobs: usize,
    /// Helper threads still available to hand out (`jobs - 1` when idle).
    helpers: Mutex<usize>,
}

impl Runner {
    /// A runner that may use up to `jobs` threads (the caller plus
    /// `jobs - 1` helpers). `jobs` is clamped to at least 1.
    pub fn new(jobs: usize) -> Runner {
        let jobs = jobs.max(1);
        Runner {
            jobs,
            helpers: Mutex::new(jobs - 1),
        }
    }

    /// A single-threaded runner: `map` is exactly the serial loop.
    pub fn serial() -> Runner {
        Runner::new(1)
    }

    /// The configured thread budget (including the calling thread).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item and returns the results in input order.
    ///
    /// The output is indistinguishable from
    /// `items.into_iter().map(f).collect()`: each cell is claimed by
    /// exactly one thread via an atomic cursor, and results are stored by
    /// cell index, so thread scheduling cannot reorder them.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let n = items.len();
        // Reserve helpers up front; never more than the cells could use.
        let budget = if n <= 1 {
            0
        } else {
            let mut avail = self.helpers.lock().expect("helper budget poisoned");
            let take = (*avail).min(n - 1);
            *avail -= take;
            take
        };
        if budget == 0 {
            return items.into_iter().map(f).collect();
        }

        let tasks: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let item = tasks[i]
                .lock()
                .expect("cell poisoned")
                .take()
                .expect("cell claimed twice");
            let out = f(item);
            *slots[i].lock().expect("slot poisoned") = Some(out);
        };
        std::thread::scope(|s| {
            for _ in 0..budget {
                s.spawn(work);
            }
            work();
        });

        *self.helpers.lock().expect("helper budget poisoned") += budget;
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot poisoned")
                    .expect("cell never ran")
            })
            .collect()
    }

    /// Runs heterogeneous cells (boxed thunks) and returns their results
    /// in submission order. This is `map` for cells that don't share an
    /// input type — e.g. `all_figures` submitting one cell per figure.
    pub fn run_cells<'a, T: Send>(&self, cells: Vec<Box<dyn FnOnce() -> T + Send + 'a>>) -> Vec<T> {
        self.map(cells, |cell| cell())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let runner = Runner::new(8);
        let items: Vec<usize> = (0..100).collect();
        let out = runner.map(items.clone(), |i| i * 3);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_runner_matches_parallel() {
        let inputs: Vec<u64> = (0..37).collect();
        let f = |x: u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let serial = Runner::serial().map(inputs.clone(), f);
        for jobs in [2, 4, 8] {
            assert_eq!(Runner::new(jobs).map(inputs.clone(), f), serial);
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let runner = Runner::new(4);
        let out = runner.map((0..50).collect(), |i: u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 50);
        assert_eq!(calls.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn nested_maps_degrade_to_serial_without_deadlock() {
        let runner = Runner::new(2);
        let out = runner.map((0..8).collect::<Vec<u32>>(), |i| {
            // Inner fan-out while the outer map holds the helper budget:
            // must complete (serially) rather than deadlock.
            runner.map((0..4).collect::<Vec<u32>>(), |j| i * 10 + j)
        });
        assert_eq!(out.len(), 8);
        assert_eq!(out[3], vec![30, 31, 32, 33]);
        // The budget is returned afterwards.
        assert_eq!(*runner.helpers.lock().unwrap(), 1);
    }

    #[test]
    fn run_cells_supports_heterogeneous_work() {
        let runner = Runner::new(4);
        let cells: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new(|| "alpha".to_string()),
            Box::new(|| format!("{}", 6 * 7)),
            Box::new(|| "omega".to_string()),
        ];
        assert_eq!(runner.run_cells(cells), vec!["alpha", "42", "omega"]);
    }

    #[test]
    fn empty_and_single_item_maps_work() {
        let runner = Runner::new(4);
        assert_eq!(runner.map(Vec::<u32>::new(), |i| i), Vec::<u32>::new());
        assert_eq!(runner.map(vec![9u32], |i| i + 1), vec![10]);
    }
}
