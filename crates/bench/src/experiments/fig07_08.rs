//! Figures 7–8: recovery-time decomposition (§V-B).
//!
//! Recovery time = failure inception → first new output after the switch,
//! decomposed into detection, redeployment (PS) / resume (Hybrid), and
//! retransmission/reprocessing.
//!
//! * Fig 7 — vs heartbeat interval (checkpoint fixed at 500 ms): detection
//!   dominates and grows linearly (3 intervals for PS, 1 for Hybrid);
//!   Hybrid's detection is ~1/3 of PS's; pre-deployment cuts the middle
//!   phase by ~75 %.
//! * Fig 8 — vs checkpoint interval (heartbeat fixed at 100 ms):
//!   retransmission/reprocessing grows with the interval while the other
//!   phases are flat, so the total changes little.

use sps_engine::SubjobId;
use sps_ha::{HaMode, HaSimulation};
use sps_metrics::{RecoveryDecomposition, RecoveryKind, Table};
use sps_sim::{SimDuration, SimTime};
use sps_workloads::{eval_chain_job, single_failure};

use crate::common::{f2, Experiment, Scale};
use crate::runner::Runner;

/// Runs one failure/recovery cycle and returns the decomposition sample.
fn run_once(
    mode: HaMode,
    heartbeat_ms: u64,
    ckpt_ms: u64,
    offset_ms: u64,
    seed: u64,
) -> Option<sps_metrics::RecoveryTimeline> {
    let job = eval_chain_job();
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), mode)
        .source_rate(1_000.0)
        .seed(seed)
        .log_sink_accepts(true)
        .tune(|c| {
            c.heartbeat_interval = SimDuration::from_millis(heartbeat_ms);
            c.checkpoint_interval = SimDuration::from_millis(ckpt_ms);
        })
        .build();
    let failure_at = SimTime::from_millis(5_000 + offset_ms);
    sim.inject_spike_windows(
        sps_cluster::MachineId(1),
        &single_failure(failure_at, SimDuration::from_secs(10)),
    );
    sim.run_until(failure_at + SimDuration::from_secs(8));
    sim.recovery_timeline(SubjobId(1), failure_at)
}

/// One `run_once` argument tuple per repetition of a `(mode, intervals)`
/// configuration, spreading the failure inception across heartbeat and
/// checkpoint phases exactly as the serial harness did.
fn repetition_cells(
    mode: HaMode,
    heartbeat_ms: u64,
    ckpt_ms: u64,
    runs: u64,
    seed: u64,
) -> impl Iterator<Item = (HaMode, u64, u64, u64, u64)> {
    (0..runs).map(move |i| {
        let offset = i * 137 % heartbeat_ms.max(1) + i * 211 % ckpt_ms.max(1);
        (mode, heartbeat_ms, ckpt_ms, offset, seed + i)
    })
}

/// Folds one configuration's timelines (in repetition order) into a
/// decomposition, skipping runs that never recovered.
fn assemble(
    mode: HaMode,
    timelines: impl Iterator<Item = Option<sps_metrics::RecoveryTimeline>>,
) -> RecoveryDecomposition {
    let kind = match mode {
        HaMode::Passive => RecoveryKind::PassiveStandby,
        HaMode::Hybrid => RecoveryKind::Hybrid,
        other => panic!("recovery decomposition is defined for PS/Hybrid, not {other}"),
    };
    let mut decomp = RecoveryDecomposition::new(kind);
    for t in timelines.flatten() {
        decomp.record(&t);
    }
    decomp
}

/// Runs every `(interval, mode, repetition)` cell of a decomposition sweep
/// through the runner and hands back per-`(interval, mode)` decompositions
/// in the serial visiting order.
fn sweep(
    runner: &Runner,
    intervals: &[u64],
    hb_of: impl Fn(u64) -> u64,
    ck_of: impl Fn(u64) -> u64,
    runs: u64,
    seed: u64,
) -> Vec<(RecoveryDecomposition, RecoveryDecomposition)> {
    let modes = [HaMode::Passive, HaMode::Hybrid];
    let mut cells = Vec::new();
    for &x in intervals {
        for &mode in &modes {
            cells.extend(repetition_cells(mode, hb_of(x), ck_of(x), runs, seed));
        }
    }
    let mut timelines = runner
        .map(cells, |(mode, hb, ck, offset, s)| {
            run_once(mode, hb, ck, offset, s)
        })
        .into_iter();
    intervals
        .iter()
        .map(|_| {
            let ps = assemble(HaMode::Passive, timelines.by_ref().take(runs as usize));
            let hy = assemble(HaMode::Hybrid, timelines.by_ref().take(runs as usize));
            (ps, hy)
        })
        .collect()
}

fn decomposition_table(sweep_label: &str) -> Table {
    Table::new(vec![
        sweep_label.to_string(),
        "PS_detect_ms".into(),
        "PS_redeploy_ms".into(),
        "PS_retrans_ms".into(),
        "PS_total_ms".into(),
        "Hy_detect_ms".into(),
        "Hy_resume_ms".into(),
        "Hy_retrans_ms".into(),
        "Hy_total_ms".into(),
    ])
}

fn push_row(table: &mut Table, x: u64, ps: &RecoveryDecomposition, hy: &RecoveryDecomposition) {
    table.row(vec![
        x.to_string(),
        f2(ps.mean_detection_ms()),
        f2(ps.mean_deploy_or_resume_ms()),
        f2(ps.mean_retrans_ms()),
        f2(ps.mean_total_ms()),
        f2(hy.mean_detection_ms()),
        f2(hy.mean_deploy_or_resume_ms()),
        f2(hy.mean_retrans_ms()),
        f2(hy.mean_total_ms()),
    ]);
}

/// Fig 7: recovery decomposition vs heartbeat interval.
pub fn fig07(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let runs = scale.pick(5, 2);
    let intervals: Vec<u64> = scale.pick(vec![100, 200, 300, 400, 500], vec![100, 300]);
    let mut table = decomposition_table("heartbeat_ms");
    let mut detect_ratio = Vec::new();
    let mut redeploy_cut = Vec::new();
    let mut total_ratio = Vec::new();
    let decomps = sweep(runner, &intervals, |hb| hb, |_| 500, runs, seed);
    for (&hb, (ps, hy)) in intervals.iter().zip(&decomps) {
        detect_ratio.push(hy.mean_detection_ms() / ps.mean_detection_ms());
        redeploy_cut.push(1.0 - hy.mean_deploy_or_resume_ms() / ps.mean_deploy_or_resume_ms());
        total_ratio.push(hy.mean_total_ms() / ps.mean_total_ms());
        push_row(&mut table, hb, ps, hy);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    Experiment {
        figure: "Figure 7",
        title: "Recovery time decomposition vs heartbeat interval",
        table,
        paper_notes: vec![
            "detection dominates recovery and grows linearly with the heartbeat interval".into(),
            "Hybrid's detection time is about 1/3 of PS's (1 vs 3 misses)".into(),
            "pre-deployment reduces the redeployment stage by ~75%".into(),
            "Hybrid recovers in about 1/3 of PS's total recovery time".into(),
        ],
        measured_notes: vec![
            format!("mean Hybrid/PS detection ratio: {:.2}", avg(&detect_ratio)),
            format!(
                "mean redeploy→resume reduction: {:.0}%",
                avg(&redeploy_cut) * 100.0
            ),
            format!(
                "mean Hybrid/PS total recovery ratio: {:.2}",
                avg(&total_ratio)
            ),
        ],
    }
}

/// Fig 8: recovery decomposition vs checkpoint interval.
pub fn fig08(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let runs = scale.pick(5, 2);
    let intervals: Vec<u64> = scale.pick(vec![100, 300, 500, 700, 900], vec![100, 900]);
    let mut table = decomposition_table("checkpoint_ms");
    let mut hy_retrans = Vec::new();
    let mut hy_total = Vec::new();
    let decomps = sweep(runner, &intervals, |_| 100, |ck| ck, runs, seed);
    for (&ck, (ps, hy)) in intervals.iter().zip(&decomps) {
        hy_retrans.push(hy.mean_retrans_ms());
        hy_total.push(hy.mean_total_ms());
        push_row(&mut table, ck, ps, hy);
    }
    Experiment {
        figure: "Figure 8",
        title: "Recovery time decomposition vs checkpoint interval",
        table,
        paper_notes: vec![
            "retransmission/reprocessing tends to grow with the checkpoint interval".into(),
            "the other phases are larger and flat, so total recovery changes little".into(),
        ],
        measured_notes: vec![
            format!(
                "Hybrid retrans/reproc across the sweep: {:.0} → {:.0} ms",
                hy_retrans.first().copied().unwrap_or(0.0),
                hy_retrans.last().copied().unwrap_or(0.0)
            ),
            format!(
                "Hybrid total across the sweep: {:.0} → {:.0} ms",
                hy_total.first().copied().unwrap_or(0.0),
                hy_total.last().copied().unwrap_or(0.0)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig07_quick_shows_hybrid_advantage() {
        let e = fig07(&Runner::serial(), Scale::Quick, 21);
        assert_eq!(e.table.len(), 2);
        // The detection-ratio note should report a value well below 1.
        assert!(e.measured_notes[0].starts_with("mean Hybrid/PS detection ratio: 0."));
    }
}
