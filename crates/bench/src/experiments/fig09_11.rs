//! Figures 9–11: hybrid switching overheads (§V-B).
//!
//! * Fig 9 — switch-over and rollback time vs data rate, for 5 s and 10 s
//!   unavailability: switch-over (resume + connection activation) is flat;
//!   rollback (read-state) grows with the rate because more elements sit in
//!   the secondary's queues.
//! * Fig 10 — switching message overhead vs rate ≈ rate × unavailability
//!   duration: dominated by the elements still sent to the unresponsive
//!   primary.
//! * Fig 11 — total message overhead grows linearly with the number of PEs
//!   per machine (each PE adds its own checkpoint traffic).

use sps_engine::SubjobId;
use sps_ha::{HaEventKind, HaMode, HaSimulation};
use sps_metrics::{fmt_count, Table};
use sps_sim::{SimDuration, SimTime};
use sps_workloads::{chain_job_with, single_failure};

use crate::common::{f2, Experiment, Scale};
use crate::runner::Runner;

/// Per-element demand for the rate sweep (saturation stays away up to
/// ~8 K elements/s with 2 PEs per machine, so queueing grows with rate the
/// way the paper's testbed did).
const SWEEP_DEMAND: f64 = 60e-6;

#[derive(Debug, Clone, Copy)]
struct SwitchCycle {
    switchover_ms: f64,
    rollback_ms: f64,
    overhead_elements: u64,
}

fn run_cycle(rate: f64, unavail: SimDuration, seed: u64) -> SwitchCycle {
    // Every subjob runs hybrid HA, as in the paper's prototype: downstream
    // acknowledgments then follow the checkpoint cadence, so the live
    // secondary's output queues hold up to a checkpoint interval of data —
    // the rate-dependent read-back volume Fig 9 measures.
    let job = chain_job_with(SWEEP_DEMAND, 20, 8, 4);
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::Hybrid)
        .source_rate(rate)
        .seed(seed)
        .tune(|c| {
            // A 10 s unavailability must stay "transient": keep the
            // fail-stop declaration beyond it.
            c.failstop_miss_threshold = 200;
        })
        .build();
    let failure_at = SimTime::from_secs(3);
    sim.inject_spike_windows(
        sps_cluster::MachineId(1),
        &single_failure(failure_at, unavail),
    );
    sim.run_until(failure_at + unavail + SimDuration::from_secs(4));
    let events = sim.world().ha_events();
    let find = |kind: HaEventKind| {
        events
            .iter()
            .find(|e| e.kind == kind)
            .map(|e| e.at)
            .unwrap_or(SimTime::ZERO)
    };
    let detected = find(HaEventKind::Detected);
    let switched = find(HaEventKind::SwitchoverComplete);
    let rb_start = find(HaEventKind::RollbackStarted);
    let rb_done = find(HaEventKind::RollbackComplete);
    SwitchCycle {
        switchover_ms: switched.saturating_since(detected).as_millis_f64(),
        rollback_ms: rb_done.saturating_since(rb_start).as_millis_f64(),
        overhead_elements: sim.world().subjob(SubjobId(1)).switch_overhead_elements,
    }
}

/// One `run_cycle` cell per (rate, unavailability) pair, 5 s then 10 s per
/// rate — the serial visiting order shared by Figs 9 and 10.
fn unavailability_cells(
    runner: &Runner,
    rates: &[f64],
    seed: u64,
) -> std::vec::IntoIter<SwitchCycle> {
    let mut cells = Vec::new();
    for &rate in rates {
        cells.push((rate, SimDuration::from_secs(5)));
        cells.push((rate, SimDuration::from_secs(10)));
    }
    runner
        .map(cells, |(rate, unavail)| run_cycle(rate, unavail, seed))
        .into_iter()
}

/// Fig 9: switch-over and rollback time vs data rate.
pub fn fig09(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let rates: Vec<f64> = scale.pick(
        vec![500.0, 1_000.0, 2_000.0, 4_000.0, 7_000.0],
        vec![500.0, 4_000.0],
    );
    let mut table = Table::new(vec![
        "rate_el_per_s",
        "5s_switchover_ms",
        "5s_rollback_ms",
        "10s_switchover_ms",
        "10s_rollback_ms",
    ]);
    let mut sw_all = Vec::new();
    let mut rb_first_last = (0.0, 0.0);
    let mut cycles = unavailability_cells(runner, &rates, seed);
    for (i, &rate) in rates.iter().enumerate() {
        let c5 = cycles.next().expect("one cell per (rate, 5s)");
        let c10 = cycles.next().expect("one cell per (rate, 10s)");
        sw_all.push(c5.switchover_ms);
        sw_all.push(c10.switchover_ms);
        if i == 0 {
            rb_first_last.0 = c10.rollback_ms;
        }
        if i == rates.len() - 1 {
            rb_first_last.1 = c10.rollback_ms;
        }
        table.row(vec![
            fmt_count(rate as u64),
            f2(c5.switchover_ms),
            f2(c5.rollback_ms),
            f2(c10.switchover_ms),
            f2(c10.rollback_ms),
        ]);
    }
    let sw_mean = sw_all.iter().sum::<f64>() / sw_all.len() as f64;
    Experiment {
        figure: "Figure 9",
        title: "Hybrid switch-over and rollback time vs data rate",
        table,
        paper_notes: vec![
            "switch-over time is stable across data rates and durations".into(),
            "rollback time grows with the data rate (more elements to read back)".into(),
        ],
        measured_notes: vec![
            format!("mean switch-over: {sw_mean:.0} ms (≈ resume delay + activation)"),
            format!(
                "10 s rollback: {:.1} ms at the lowest rate → {:.1} ms at the highest",
                rb_first_last.0, rb_first_last.1
            ),
        ],
    }
}

/// Fig 10: switching message overhead vs data rate.
pub fn fig10(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let rates: Vec<f64> = scale.pick(
        vec![500.0, 1_000.0, 2_000.0, 4_000.0, 7_000.0],
        vec![500.0, 4_000.0],
    );
    let mut table = Table::new(vec![
        "rate_el_per_s",
        "5s_overhead_elements",
        "10s_overhead_elements",
        "10s_over_rate_x_duration",
    ]);
    let mut cycles = unavailability_cells(runner, &rates, seed);
    for &rate in &rates {
        let c5 = cycles.next().expect("one cell per (rate, 5s)");
        let c10 = cycles.next().expect("one cell per (rate, 10s)");
        table.row(vec![
            fmt_count(rate as u64),
            fmt_count(c5.overhead_elements),
            fmt_count(c10.overhead_elements),
            f2(c10.overhead_elements as f64 / (rate * 10.0)),
        ]);
    }
    Experiment {
        figure: "Figure 10",
        title: "Hybrid switching message overhead vs data rate",
        table,
        paper_notes: vec![
            "overhead grows linearly with the rate; roughly rate × unavailability duration".into(),
            "dominated by elements sent to the unresponsive primary; read-back is small".into(),
        ],
        measured_notes: vec!["the last column should stay near 1.0 (≈ rate × duration)".into()],
    }
}

/// Fig 11: total message overhead vs number of PEs per machine.
pub fn fig11(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let sim_secs = scale.pick(10, 3);
    let pes_per_machine: Vec<usize> = scale.pick(vec![1, 2, 3, 4, 5, 6, 7, 8], vec![1, 4, 8]);
    let mut table = Table::new(vec!["pes_per_machine", "total_overhead_elements"]);
    let mut first = 0u64;
    let mut last = 0u64;
    let totals = runner.map(pes_per_machine.clone(), |k| {
        // Two subjobs of k PEs each, both hybrid; light per-element demand
        // so even 8 PEs per machine stay unsaturated.
        let job = chain_job_with(40e-6, 20, 2 * k, 2);
        let mut sim = HaSimulation::builder(job)
            .mode(HaMode::Hybrid)
            .source_rate(1_000.0)
            .seed(seed)
            .build();
        sim.run_until(SimTime::from_secs(sim_secs));
        sim.report().total_overhead_elements()
    });
    for (i, (&k, total)) in pes_per_machine.iter().zip(totals).enumerate() {
        if i == 0 {
            first = total;
        }
        last = total;
        table.row(vec![k.to_string(), fmt_count(total)]);
    }
    Experiment {
        figure: "Figure 11",
        title: "Message overhead vs number of PEs per machine (hybrid)",
        table,
        paper_notes: vec![
            "overhead increases about linearly: each PE adds its own checkpoint traffic".into(),
        ],
        measured_notes: vec![format!(
            "{} elements at 1 PE/machine → {} at the maximum",
            fmt_count(first),
            fmt_count(last)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_cycle_records_all_phases() {
        let c = run_cycle(1_000.0, SimDuration::from_secs(5), 5);
        assert!(c.switchover_ms > 0.0, "switchover happened");
        assert!(c.rollback_ms > 0.0, "rollback happened");
        assert!(
            c.overhead_elements > 1_000,
            "elements kept flowing to the primary"
        );
    }

    #[test]
    fn fig11_quick_is_monotone() {
        let e = fig11(&Runner::serial(), Scale::Quick, 2);
        assert_eq!(e.table.len(), 3);
    }
}
