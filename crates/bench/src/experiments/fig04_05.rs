//! Figures 4–5: end-to-end delay under transient failures (§V-B).
//!
//! * Fig 4 — average element delay vs average CPU usage for NONE / AS / PS
//!   / Hybrid, with independent failure loads on the protected subjob's
//!   primary and secondary machines. AS stays lowest and flat; Hybrid is
//!   flat and slightly above AS; NONE and PS grow about linearly, PS
//!   highest.
//! * Fig 5 — multiplexing gains: three primaries share one secondary; E2E
//!   delay grows less than 25 % while failures occupy up to 20 % of the
//!   time, and about 80 % at 30 %.

use sps_cluster::MachineId;
use sps_engine::SubjobId;
use sps_ha::{HaMode, HaSimulation, Placement};
use sps_metrics::Table;
use sps_sim::{SimDuration, SimRng, SimTime};
use sps_workloads::{eval_chain_job, failure_load, marginal_spike_share, multiplexed_placement};

use crate::common::{f2, mean, Experiment, Scale};
use crate::runner::Runner;

/// The §V-B failure loads: mean spike length 5 s, CPU pushed to 95–100 %.
const MEAN_SPIKE: SimDuration = SimDuration::from_secs(5);

fn run_fig04_cell(mode: HaMode, fraction: f64, seed: u64, sim_secs: u64) -> (f64, f64) {
    let job = eval_chain_job();
    let placement = Placement::default_for(&job);
    let primary = placement.primaries[1];
    let secondary = placement.secondaries[1].expect("default placement has secondaries");
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), mode)
        .source_rate(1_000.0)
        .seed(seed)
        .build();
    let horizon = SimTime::from_secs(sim_secs);
    let mut rng = SimRng::seed_from(seed ^ 0xF1604);
    let share = marginal_spike_share(0.6);
    let pri_load = failure_load(fraction, MEAN_SPIKE, share, horizon, &mut rng);
    let sec_load = failure_load(fraction, MEAN_SPIKE, share, horizon, &mut rng);
    sim.inject_spike_windows(primary, &pri_load);
    sim.inject_spike_windows(secondary, &sec_load);
    sim.run_until(horizon);
    let report = sim.report();
    let busy = sim.world().cluster().machine(primary).busy_integral();
    let cpu = busy / sim_secs as f64;
    (report.sink_mean_delay_ms, cpu)
}

/// Fig 4: average element delay vs average CPU usage.
pub fn fig04(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let sim_secs = scale.pick(60, 20);
    let seeds: Vec<u64> = (0..scale.pick(5, 1)).map(|i| seed + i).collect();
    let fractions = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let modes = [
        HaMode::None,
        HaMode::Active,
        HaMode::Passive,
        HaMode::Hybrid,
    ];

    // One cell per (fraction, mode, seed), submitted in the same nesting
    // order the serial loops used; results come back in submission order,
    // so the aggregation below is byte-identical to the serial run.
    let mut cells = Vec::new();
    for &frac in &fractions {
        for &mode in &modes {
            for &s in &seeds {
                cells.push((mode, frac, s));
            }
        }
    }
    let mut results = runner
        .map(cells, |(mode, frac, s)| {
            run_fig04_cell(mode, frac, s, sim_secs)
        })
        .into_iter();

    let mut table = Table::new(vec![
        "failure_time_frac",
        "avg_cpu_pct",
        "NONE_ms",
        "AS_ms",
        "PS_ms",
        "Hybrid_ms",
    ]);
    let mut flatness: Vec<(HaMode, f64, f64)> = Vec::new(); // (mode, first, last)
    let mut firsts = [0.0f64; 4];
    let mut lasts = [0.0f64; 4];
    for (fi, &frac) in fractions.iter().enumerate() {
        let mut cpu_all = Vec::new();
        let mut delays = [0.0f64; 4];
        for (mi, _mode) in modes.iter().enumerate() {
            let runs: Vec<(f64, f64)> = seeds
                .iter()
                .map(|_| results.next().expect("one result per cell"))
                .collect();
            delays[mi] = mean(&runs.iter().map(|r| r.0).collect::<Vec<_>>());
            cpu_all.extend(runs.iter().map(|r| r.1));
            if fi == 0 {
                firsts[mi] = delays[mi];
            }
            if fi == fractions.len() - 1 {
                lasts[mi] = delays[mi];
            }
        }
        table.row(vec![
            f2(frac),
            f2(mean(&cpu_all) * 100.0),
            f2(delays[0]),
            f2(delays[1]),
            f2(delays[2]),
            f2(delays[3]),
        ]);
    }
    for (mi, &mode) in modes.iter().enumerate() {
        flatness.push((mode, firsts[mi], lasts[mi]));
    }
    let measured = flatness
        .iter()
        .map(|(m, a, b)| format!("{m}: {:.1} ms → {:.1} ms across the sweep", a, b))
        .collect();
    Experiment {
        figure: "Figure 4",
        title: "Average element delay under transient failures (NONE/AS/PS/Hybrid)",
        table,
        paper_notes: vec![
            "AS has the lowest delay and remains stable".into(),
            "NONE and PS increase about linearly with failure severity; PS is higher".into(),
            "Hybrid remains flat, below NONE/PS and somewhat above AS".into(),
        ],
        measured_notes: measured,
    }
}

/// The §V-B "8-fold during failure periods" observation, reported by fig04's
/// harness binary at the most severe setting.
pub fn failure_period_inflation(scale: Scale, seed: u64) -> (f64, f64) {
    let sim_secs = scale.pick(40, 10);
    let job = eval_chain_job();
    let primary = MachineId(1);
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .source_rate(1_000.0)
        .seed(seed)
        .build();
    let horizon = SimTime::from_secs(sim_secs);
    // Deterministic regular marginal spikes (1/3 duty) so every scale sees
    // failures; share 0.5 pushes the 60%-loaded machine ~10% past capacity.
    let load = sps_cluster::SpikeProfile::regular(
        SimDuration::from_secs(6),
        SimDuration::from_secs(2),
        0.5,
    )
    .generate(&mut SimRng::seed_from(seed), horizon);
    let windows_s: Vec<(f64, f64)> = load
        .iter()
        .map(|w| (w.start.as_secs_f64(), w.end.as_secs_f64()))
        .collect();
    sim.inject_spike_windows(primary, &load);
    sim.run_until(horizon);
    sim.world().sinks()[0]
        .latency()
        .mean_inside_outside(&windows_s)
}

/// Fig 5: multiplexing — subjobs 1–3 (hybrid) share one secondary machine.
pub fn fig05(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let sim_secs = scale.pick(80, 10);
    let seeds: Vec<u64> = (0..scale.pick(5, 1)).map(|i| seed + i).collect();
    let fractions = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30];
    let shared_subjobs = [1u32, 2, 3];

    let run = |fraction: f64, shared: bool, seed: u64| -> f64 {
        let job = eval_chain_job();
        let placement = if shared {
            multiplexed_placement(&job, &shared_subjobs)
        } else {
            Placement::default_for(&job)
        };
        let primaries: Vec<MachineId> = shared_subjobs
            .iter()
            .map(|&sj| placement.primaries[sj as usize])
            .collect();
        let mut builder = HaSimulation::builder(job)
            .mode(HaMode::None)
            .placement(placement)
            .source_rate(1_000.0)
            .seed(seed);
        for &sj in &shared_subjobs {
            builder = builder.subjob_mode(SubjobId(sj), HaMode::Hybrid);
        }
        let mut sim = builder.build();
        let horizon = SimTime::from_secs(sim_secs);
        for (i, &m) in primaries.iter().enumerate() {
            let mut rng = SimRng::seed_from(seed ^ (0xF105 + i as u64 * 7919));
            sim.inject_spike_windows(
                m,
                &failure_load(
                    fraction,
                    MEAN_SPIKE,
                    marginal_spike_share(0.6),
                    horizon,
                    &mut rng,
                ),
            );
        }
        sim.run_until(horizon);
        sim.report().sink_mean_delay_ms
    };

    // Cells in the serial visiting order: per fraction, all shared-secondary
    // seeds then all dedicated-secondary seeds.
    let mut cells = Vec::new();
    for &frac in &fractions {
        for shared in [true, false] {
            for &s in &seeds {
                cells.push((frac, shared, s));
            }
        }
    }
    let mut results = runner
        .map(cells, |(frac, shared, s)| run(frac, shared, s))
        .into_iter();

    let mut table = Table::new(vec![
        "failure_time_frac",
        "shared_secondary_ms",
        "dedicated_secondary_ms",
        "increase_pct",
    ]);
    let mut max_increase: f64 = 0.0;
    let mut low_increase: f64 = 0.0;
    for &frac in &fractions {
        let shared = mean(
            &seeds
                .iter()
                .map(|_| results.next().expect("one result per cell"))
                .collect::<Vec<_>>(),
        );
        let dedicated = mean(
            &seeds
                .iter()
                .map(|_| results.next().expect("one result per cell"))
                .collect::<Vec<_>>(),
        );
        let inc = (shared / dedicated - 1.0) * 100.0;
        if frac <= 0.201 {
            low_increase = low_increase.max(inc);
        }
        max_increase = max_increase.max(inc);
        table.row(vec![f2(frac), f2(shared), f2(dedicated), f2(inc)]);
    }
    Experiment {
        figure: "Figure 5",
        title: "E2E delay with 3 primaries sharing one secondary (multiplexing)",
        table,
        paper_notes: vec![
            "delay increases less than 25% while failures occupy up to 20% of the time".into(),
            "the increase becomes significant (~80%) at 30% failure time".into(),
        ],
        measured_notes: vec![
            format!("max increase up to 20% failure time: {low_increase:.0}%"),
            format!("max increase overall: {max_increase:.0}%"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_quick_produces_all_modes() {
        let e = fig04(&Runner::serial(), Scale::Quick, 11);
        assert_eq!(e.table.len(), 6);
    }

    #[test]
    fn inflation_is_substantial() {
        let (inside, outside) = failure_period_inflation(Scale::Quick, 3);
        assert!(
            inside > 2.0 * outside,
            "inside {inside} vs outside {outside}"
        );
    }
}
