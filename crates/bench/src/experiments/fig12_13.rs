//! Figures 12–13: transient-failure detection (§V-C).
//!
//! Heartbeat vs benchmarking detection over ~200 injected load spikes per
//! background-load level, under bursty application traffic:
//!
//! * Fig 12 — background-load detection ratio: benchmarking declares nearly
//!   everything even at 60 % load (over-sensitive); heartbeat stays low at
//!   low load and approaches 1 at ≥ 90 %.
//! * Fig 13 — false-alarm ratio: benchmarking exceeds 15 % (bursty traffic
//!   triggers it); heartbeat stays near zero.

use sps_cluster::{MachineId, SpikeWindow};
use sps_engine::SubjobId;
use sps_ha::{BenchmarkConfig, HaMode, HaSimulation, PayloadGen, RateProfile};
use sps_metrics::Table;
use sps_sim::{SimDuration, SimTime};
use sps_workloads::chain_job_with;

use crate::common::{f2, Experiment, Scale};
use crate::runner::Runner;

/// One load level's detection outcome for both detectors.
#[derive(Debug, Clone, Copy)]
pub struct DetectionPoint {
    /// Target machine load during spikes.
    pub load: f64,
    /// Heartbeat: detected spikes / injected spikes.
    pub hb_detection: f64,
    /// Heartbeat: false declarations / all declarations.
    pub hb_false_alarm: f64,
    /// Benchmarking: detected spikes / injected spikes.
    pub bench_detection: f64,
    /// Benchmarking: false declarations / all declarations.
    pub bench_false_alarm: f64,
}

/// Classifies declarations against ground-truth spike windows.
fn classify(
    declarations: &[SimTime],
    spikes: &[SpikeWindow],
    tolerance: SimDuration,
) -> (usize, usize) {
    let mut detected = vec![false; spikes.len()];
    let mut false_alarms = 0usize;
    for &at in declarations {
        let mut matched = false;
        for (i, w) in spikes.iter().enumerate() {
            if at >= w.start && at <= w.end + tolerance {
                detected[i] = true;
                matched = true;
                break;
            }
        }
        if !matched {
            false_alarms += 1;
        }
    }
    (detected.iter().filter(|&&d| d).count(), false_alarms)
}

/// Runs the detection experiment at one target load level.
pub fn run_level(load: f64, spikes: usize, seed: u64) -> DetectionPoint {
    // Two subjobs; the machine under test (machine 1) hosts subjob 1's two
    // PEs, whose ambient demand averages ~0.2 CPU under the bursty feed.
    let job = chain_job_with(0.000_3, 20, 4, 2);
    let ambient = 0.18;
    let spike_share = (load - ambient).clamp(0.05, 1.0);
    let machine = MachineId(1);
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_profile(
            0,
            RateProfile::Bursty {
                base_per_sec: 250.0,
                burst_per_sec: 650.0,
                mean_on: SimDuration::from_millis(300),
                mean_off: SimDuration::from_millis(1_200),
            },
            PayloadGen::Synthetic,
        )
        .seed(seed)
        .tune(|c| {
            // The §V-C study uses a 110 ms heartbeat.
            c.heartbeat_interval = SimDuration::from_millis(110);
        })
        .build();
    sim.add_benchmark_detector(machine, BenchmarkConfig::default());

    // Periodic 5 s spikes, 15 s apart, with deterministic phase jitter.
    let windows: Vec<SpikeWindow> = (0..spikes)
        .map(|i| {
            let start = SimTime::from_millis(5_000 + i as u64 * 20_000 + (i as u64 * 613) % 900);
            SpikeWindow {
                start,
                end: start + SimDuration::from_secs(5),
                share: spike_share,
            }
        })
        .collect();
    sim.inject_spike_windows(machine, &windows);
    let horizon = windows.last().expect("spikes requested").end + SimDuration::from_secs(10);
    sim.run_until(horizon);

    let tolerance = SimDuration::from_millis(1_000);
    let world = sim.world();
    let hb_declarations: Vec<SimTime> = world.monitors()[0].declarations.clone();
    let bench_declarations: Vec<SimTime> = world.bench_detectors()[0].declarations.clone();
    let (hb_hit, hb_fa) = classify(&hb_declarations, &windows, tolerance);
    let (bench_hit, bench_fa) = classify(&bench_declarations, &windows, tolerance);
    let ratio = |hits: usize| hits as f64 / spikes as f64;
    let fa_ratio = |fa: usize, total: usize| {
        if total == 0 {
            0.0
        } else {
            fa as f64 / total as f64
        }
    };
    DetectionPoint {
        load,
        hb_detection: ratio(hb_hit),
        hb_false_alarm: fa_ratio(hb_fa, hb_declarations.len()),
        bench_detection: ratio(bench_hit),
        bench_false_alarm: fa_ratio(bench_fa, bench_declarations.len()),
    }
}

fn sweep(runner: &Runner, scale: Scale, seed: u64) -> Vec<DetectionPoint> {
    let spikes = scale.pick(100, 12);
    let loads = scale.pick(vec![0.6, 0.7, 0.8, 0.9, 0.95], vec![0.6, 0.9]);
    runner.map(loads, |l| run_level(l, spikes, seed))
}

/// Fig 12: background-load detection ratio vs machine load.
pub fn fig12(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let points = sweep(runner, scale, seed);
    let mut table = Table::new(vec!["machine_load_pct", "heartbeat", "benchmark"]);
    for p in &points {
        table.row(vec![
            f2(p.load * 100.0),
            f2(p.hb_detection),
            f2(p.bench_detection),
        ]);
    }
    let hb_low = points.first().map(|p| p.hb_detection).unwrap_or(0.0);
    let hb_high = points.last().map(|p| p.hb_detection).unwrap_or(0.0);
    let bench_low = points.first().map(|p| p.bench_detection).unwrap_or(0.0);
    Experiment {
        figure: "Figure 12",
        title: "Background-load detection ratio vs machine load",
        table,
        paper_notes: vec![
            "benchmarking declares essentially all generated loads even at 60% (over-sensitive)"
                .into(),
            "heartbeat is close to 1 at high loads (≥90%) and much lower at low loads".into(),
        ],
        measured_notes: vec![
            format!("heartbeat: {hb_low:.2} at the lowest load → {hb_high:.2} at the highest"),
            format!("benchmark at the lowest load: {bench_low:.2}"),
        ],
    }
}

/// Fig 13: false-alarm ratio vs machine load.
pub fn fig13(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let points = sweep(runner, scale, seed);
    let mut table = Table::new(vec!["machine_load_pct", "heartbeat", "benchmark"]);
    for p in &points {
        table.row(vec![
            f2(p.load * 100.0),
            f2(p.hb_false_alarm),
            f2(p.bench_false_alarm),
        ]);
    }
    let hb_max = points.iter().map(|p| p.hb_false_alarm).fold(0.0, f64::max);
    let bench_min = points
        .iter()
        .map(|p| p.bench_false_alarm)
        .fold(1.0, f64::min);
    Experiment {
        figure: "Figure 13",
        title: "False-alarm ratio vs machine load",
        table,
        paper_notes: vec![
            "benchmarking's false-alarm ratio is fairly high, exceeding 15% even at 90% load"
                .into(),
            "heartbeat maintains a very low false-alarm ratio at all loads".into(),
        ],
        measured_notes: vec![
            format!("heartbeat max false-alarm ratio: {hb_max:.2}"),
            format!("benchmark min false-alarm ratio: {bench_min:.2}"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_windows() {
        let spikes = vec![SpikeWindow {
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(15),
            share: 1.0,
        }];
        let declarations = vec![
            SimTime::from_secs(11),       // hit
            SimTime::from_secs(20),       // false alarm
            SimTime::from_millis(15_100), // within tolerance: still the spike
        ];
        let (hits, fa) = classify(&declarations, &spikes, SimDuration::from_millis(1_000));
        assert_eq!(hits, 1);
        assert_eq!(fa, 1);
    }

    #[test]
    fn detection_contrast_between_loads() {
        let low = run_level(0.6, 10, 3);
        let high = run_level(0.95, 10, 3);
        assert!(
            high.hb_detection > low.hb_detection,
            "heartbeat detects more at higher load: {} vs {}",
            high.hb_detection,
            low.hb_detection
        );
        assert!(
            high.hb_detection > 0.8,
            "near-certain at 95%: {}",
            high.hb_detection
        );
        assert!(
            high.bench_detection > 0.8,
            "benchmark detects high loads: {}",
            high.bench_detection
        );
    }
}
