//! Detector ablation: heartbeat vs benchmarking vs trend prediction.
//!
//! §IV-A closes with "our hybrid HA method can readily take advantage" of
//! any detector that is fast and reliable, citing Gu et al.'s prediction
//! work. This experiment runs all three detectors side by side over the
//! same spike schedule and reports detection ratio, false-alarm ratio, and
//! mean detection delay — extending the paper's Figs 12–13 with the
//! prediction column, plus the §V-C detection-delay comparison.

use sps_cluster::{MachineId, SpikeWindow};
use sps_engine::SubjobId;
use sps_ha::{BenchmarkConfig, HaMode, HaSimulation, PayloadGen, PredictorConfig, RateProfile};
use sps_metrics::Table;
use sps_sim::{SimDuration, SimTime};
use sps_workloads::chain_job_with;

use crate::common::{f2, Experiment, Scale};
use crate::runner::Runner;

/// Per-detector outcome at one load level.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectorScore {
    /// Detected spikes / injected spikes.
    pub detection: f64,
    /// False declarations / all declarations.
    pub false_alarm: f64,
    /// Mean latency from spike start to the first attributed declaration.
    pub mean_delay_ms: f64,
}

fn score(
    declarations: &[SimTime],
    spikes: &[SpikeWindow],
    tolerance: SimDuration,
) -> DetectorScore {
    let mut first_hit: Vec<Option<SimTime>> = vec![None; spikes.len()];
    let mut false_alarms = 0usize;
    for &at in declarations {
        let mut matched = false;
        for (i, w) in spikes.iter().enumerate() {
            if at >= w.start && at <= w.end + tolerance {
                if first_hit[i].is_none() {
                    first_hit[i] = Some(at);
                }
                matched = true;
                break;
            }
        }
        if !matched {
            false_alarms += 1;
        }
    }
    let hits: Vec<(usize, SimTime)> = first_hit
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|t| (i, t)))
        .collect();
    let mean_delay_ms = if hits.is_empty() {
        0.0
    } else {
        hits.iter()
            .map(|&(i, t)| t.saturating_since(spikes[i].start).as_millis_f64())
            .sum::<f64>()
            / hits.len() as f64
    };
    DetectorScore {
        detection: hits.len() as f64 / spikes.len() as f64,
        false_alarm: if declarations.is_empty() {
            0.0
        } else {
            false_alarms as f64 / declarations.len() as f64
        },
        mean_delay_ms,
    }
}

/// Runs all three detectors at one target load.
pub fn run_level(load: f64, spikes: usize, seed: u64) -> [DetectorScore; 3] {
    let job = chain_job_with(0.000_3, 20, 4, 2);
    let ambient = 0.18;
    let spike_share = (load - ambient).clamp(0.05, 1.0);
    let machine = MachineId(1);
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_profile(
            0,
            RateProfile::Bursty {
                base_per_sec: 250.0,
                burst_per_sec: 650.0,
                mean_on: SimDuration::from_millis(300),
                mean_off: SimDuration::from_millis(1_200),
            },
            PayloadGen::Synthetic,
        )
        .seed(seed)
        .tune(|c| c.heartbeat_interval = SimDuration::from_millis(110))
        .build();
    let det = sim.add_benchmark_detector(machine, BenchmarkConfig::default());
    sim.world_mut()
        .attach_predictor(det, PredictorConfig::default());

    let windows: Vec<SpikeWindow> = (0..spikes)
        .map(|i| {
            let start = SimTime::from_millis(5_000 + i as u64 * 20_000 + (i as u64 * 613) % 900);
            SpikeWindow {
                start,
                end: start + SimDuration::from_secs(5),
                share: spike_share,
            }
        })
        .collect();
    sim.inject_spike_windows(machine, &windows);
    sim.run_until(windows.last().expect("spikes").end + SimDuration::from_secs(10));

    let tolerance = SimDuration::from_millis(1_000);
    let world = sim.world();
    [
        score(&world.monitors()[0].declarations, &windows, tolerance),
        score(
            &world.bench_detectors()[0].declarations,
            &windows,
            tolerance,
        ),
        score(
            &world.bench_detectors()[0].predictor_declarations,
            &windows,
            tolerance,
        ),
    ]
}

/// The detector ablation experiment.
pub fn ablation_detectors(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let spikes = scale.pick(60, 10);
    let loads = scale.pick(vec![0.6, 0.8, 0.9, 0.95], vec![0.6, 0.9]);
    let scores = runner.map(loads.clone(), |load| run_level(load, spikes, seed));
    let mut table = Table::new(vec![
        "load_pct",
        "hb_detect",
        "hb_fa",
        "hb_delay_ms",
        "bench_detect",
        "bench_fa",
        "bench_delay_ms",
        "pred_detect",
        "pred_fa",
        "pred_delay_ms",
    ]);
    let mut high_delays = (0.0, 0.0, 0.0);
    for (&load, [hb, bench, pred]) in loads.iter().zip(scores) {
        if load >= 0.89 {
            high_delays = (hb.mean_delay_ms, bench.mean_delay_ms, pred.mean_delay_ms);
        }
        table.row(vec![
            f2(load * 100.0),
            f2(hb.detection),
            f2(hb.false_alarm),
            f2(hb.mean_delay_ms),
            f2(bench.detection),
            f2(bench.false_alarm),
            f2(bench.mean_delay_ms),
            f2(pred.detection),
            f2(pred.false_alarm),
            f2(pred.mean_delay_ms),
        ]);
    }
    Experiment {
        figure: "§IV-A/§V-C ablation",
        title: "Heartbeat vs benchmarking vs trend prediction",
        table,
        paper_notes: vec![
            "heartbeat: comparable detection delay to benchmarking, far fewer false alarms".into(),
            "the hybrid is compatible with prediction-based detectors (Gu et al.)".into(),
        ],
        measured_notes: vec![format!(
            "mean detection delay at ≥90% load — heartbeat {:.0} ms, benchmark {:.0} ms, \
             predictor {:.0} ms",
            high_delays.0, high_delays.1, high_delays.2
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_scores_high_loads() {
        let [hb, bench, pred] = run_level(0.95, 8, 4);
        assert!(hb.detection > 0.8, "heartbeat {:?}", hb);
        assert!(bench.detection > 0.8, "benchmark {:?}", bench);
        assert!(pred.detection > 0.6, "predictor {:?}", pred);
    }

    #[test]
    fn score_handles_empty_declarations() {
        let spikes = vec![SpikeWindow {
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
            share: 1.0,
        }];
        let s = score(&[], &spikes, SimDuration::from_millis(100));
        assert_eq!(s.detection, 0.0);
        assert_eq!(s.false_alarm, 0.0);
        assert_eq!(s.mean_delay_ms, 0.0);
    }
}
