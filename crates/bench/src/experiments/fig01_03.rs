//! Figures 1–3: the measurement study (§II-B).
//!
//! * Fig 1 — per-machine processing time of a parallel application; about a
//!   50 % increase on machines shared with other applications.
//! * Fig 2 — CDF of per-machine mean inter-failure time; ≥75 % of machines
//!   spike more often than once every 60 s.
//! * Fig 3 — CDF of per-machine mean spike duration; ~70 % under 10 s,
//!   ~20 % over 20 s.

use sps_metrics::Table;
use sps_sim::{SimDuration, SimRng};
use sps_workloads::{run_weather_app, ClusterStudy, ClusterStudyConfig, WeatherAppConfig};

use crate::common::{f2, f3, mean, Experiment, Scale};
use crate::runner::Runner;

/// Fig 1: weather-app processing time per machine.
pub fn fig01(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let config = WeatherAppConfig {
        tasks_per_machine: scale.pick(50, 10),
        ..WeatherAppConfig::default()
    };
    let run = runner
        .map(vec![seed], |s| {
            let mut rng = SimRng::seed_from(s);
            run_weather_app(&config, &mut rng)
        })
        .pop()
        .expect("one cell submitted");
    let mut table = Table::new(vec![
        "machine",
        "mean_processing_s",
        "shared_with_other_apps",
    ]);
    for (m, t) in &run.rows {
        table.row(vec![
            m.to_string(),
            f3(*t),
            if *m >= config.loaded_from {
                "yes"
            } else {
                "no"
            }
            .into(),
        ]);
    }
    let clean: Vec<f64> = run
        .rows
        .iter()
        .filter(|(m, _)| *m < config.loaded_from)
        .map(|(_, t)| *t)
        .collect();
    let loaded: Vec<f64> = run
        .rows
        .iter()
        .filter(|(m, _)| *m >= config.loaded_from)
        .map(|(_, t)| *t)
        .collect();
    let ratio = mean(&loaded) / mean(&clean);
    Experiment {
        figure: "Figure 1",
        title: "Impact of transient failures on processing time (weather app)",
        table,
        paper_notes: vec![
            "machines 41–53 finish in ~0.58 s; machines 55–61 take ~0.9 s (a ~50% increase)".into(),
        ],
        measured_notes: vec![format!(
            "clean machines {:.3} s, shared machines {:.3} s — {:.0}% increase",
            mean(&clean),
            mean(&loaded),
            (ratio - 1.0) * 100.0
        )],
    }
}

fn study(scale: Scale, seed: u64) -> ClusterStudy {
    let config = ClusterStudyConfig {
        duration: scale.pick(
            SimDuration::from_secs(24 * 3600),
            SimDuration::from_secs(2 * 3600),
        ),
        ..ClusterStudyConfig::default()
    };
    let mut rng = SimRng::seed_from(seed);
    ClusterStudy::run(&config, &mut rng)
}

/// Fig 2: CDF of per-machine mean inter-failure time.
pub fn fig02(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let s = runner
        .map(vec![seed], |s| study(scale, s))
        .pop()
        .expect("one cell submitted");
    let mut cdf = s.inter_failure_cdf();
    let mut table = Table::new(vec!["avg_inter_failure_s", "cdf"]);
    for (x, f) in cdf.curve(25) {
        table.row(vec![f2(x), f3(f)]);
    }
    let under_60 = cdf.fraction_at_most(60.0);
    Experiment {
        figure: "Figure 2",
        title: "CDF of transient-failure frequency across 83 machines",
        table,
        paper_notes: vec![
            "over 75% of machines have transient failures more frequent than once every 60 s"
                .into(),
            "all 83 machines exhibited transient unavailability".into(),
        ],
        measured_notes: vec![format!(
            "{:.0}% of machines spike more often than once/60 s; {}/{} machines spiked",
            under_60 * 100.0,
            s.machines_with_spikes(),
            s.machines.len()
        )],
    }
}

/// Fig 3: CDF of per-machine mean spike duration.
pub fn fig03(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let s = runner
        .map(vec![seed], |s| study(scale, s))
        .pop()
        .expect("one cell submitted");
    let mut cdf = s.duration_cdf();
    let mut table = Table::new(vec!["avg_spike_duration_s", "cdf"]);
    for (x, f) in cdf.curve(25) {
        table.row(vec![f2(x), f3(f)]);
    }
    let under_10 = cdf.fraction_at_most(10.0);
    let under_15 = cdf.fraction_at_most(15.0);
    let over_20 = 1.0 - cdf.fraction_at_most(20.0);
    Experiment {
        figure: "Figure 3",
        title: "CDF of transient-failure duration",
        table,
        paper_notes: vec![
            "about 80% of spikes last less than 15 s; above 70% shorter than 10 s".into(),
            "about 20% last more than 20 s".into(),
        ],
        measured_notes: vec![format!(
            "{:.0}% under 10 s, {:.0}% under 15 s, {:.0}% over 20 s",
            under_10 * 100.0,
            under_15 * 100.0,
            over_20 * 100.0
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_quick_shows_slowdown() {
        let e = fig01(&Runner::serial(), Scale::Quick, 1);
        assert_eq!(e.table.len(), 21);
        assert!(e.measured_notes[0].contains("increase"));
    }

    #[test]
    fn fig02_03_quick_produce_curves() {
        let e2 = fig02(&Runner::serial(), Scale::Quick, 1);
        assert!(!e2.table.is_empty());
        let e3 = fig03(&Runner::serial(), Scale::Quick, 1);
        assert!(!e3.table.is_empty());
    }
}
