//! Figure 6: message overhead vs data rate (§V-B, "Traffic Amount").
//!
//! AS carries about four times NONE's traffic (two copies of every subjob
//! each send to two downstream copies); PS and Hybrid add only ~10 % thanks
//! to sweeping checkpointing, at both checkpoint intervals.

use sps_engine::SubjobId;
use sps_ha::{HaMode, HaSimulation};
use sps_metrics::{fmt_count, Table};
use sps_sim::{SimDuration, SimTime};
use sps_workloads::chain_job_with;

use crate::common::{Experiment, Scale};
use crate::runner::Runner;

/// Per-element CPU demand for the rate sweep: light enough that 25 K
/// elements/s × 2 PEs stays below one machine's capacity (the paper's
/// prototype sustains these rates on its testbed; our default synthetic
/// demand is calibrated for the 1 K/s delay experiments instead).
const RATE_SWEEP_DEMAND: f64 = 15e-6;

#[derive(Debug, Clone, Copy)]
struct Config {
    mode: HaMode,
    ckpt: SimDuration,
}

fn run(config: Config, rate: f64, sim_secs: u64, seed: u64) -> u64 {
    let job = chain_job_with(RATE_SWEEP_DEMAND, 20, 8, 4);
    let n_subjobs = job.subjob_count();
    let mut builder = HaSimulation::builder(job)
        .mode(config.mode)
        .source_rate(rate)
        .seed(seed)
        .tune(|c| c.checkpoint_interval = config.ckpt);
    for sj in 0..n_subjobs as u32 {
        builder = builder.subjob_mode(SubjobId(sj), config.mode);
    }
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(sim_secs));
    sim.report().total_overhead_elements()
}

/// Fig 6: total elements transmitted vs source rate for six configurations.
pub fn fig06(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let sim_secs = scale.pick(5, 2);
    let rates: Vec<f64> = scale.pick(
        vec![1_000.0, 5_000.0, 10_000.0, 15_000.0, 20_000.0, 25_000.0],
        vec![1_000.0, 10_000.0, 25_000.0],
    );
    let configs = [
        Config {
            mode: HaMode::None,
            ckpt: SimDuration::from_millis(500),
        },
        Config {
            mode: HaMode::Active,
            ckpt: SimDuration::from_millis(500),
        },
        Config {
            mode: HaMode::Passive,
            ckpt: SimDuration::from_millis(100),
        },
        Config {
            mode: HaMode::Passive,
            ckpt: SimDuration::from_millis(500),
        },
        Config {
            mode: HaMode::Hybrid,
            ckpt: SimDuration::from_millis(100),
        },
        Config {
            mode: HaMode::Hybrid,
            ckpt: SimDuration::from_millis(500),
        },
    ];

    let mut table = Table::new(vec![
        "rate_el_per_s",
        "NONE",
        "AS",
        "PS-100ms",
        "PS-500ms",
        "Hybrid-100ms",
        "Hybrid-500ms",
    ]);
    // One cell per (rate, config), in the serial visiting order.
    let mut cells = Vec::new();
    for &rate in &rates {
        for &c in &configs {
            cells.push((c, rate));
        }
    }
    let mut results = runner
        .map(cells, |(c, rate)| run(c, rate, sim_secs, seed))
        .into_iter();

    let mut as_ratio = Vec::new();
    let mut hybrid_overhead = Vec::new();
    for &rate in &rates {
        let counts: Vec<u64> = configs
            .iter()
            .map(|_| results.next().expect("one result per cell"))
            .collect();
        as_ratio.push(counts[1] as f64 / counts[0] as f64);
        hybrid_overhead.push(counts[5] as f64 / counts[0] as f64 - 1.0);
        let mut row = vec![fmt_count(rate as u64)];
        row.extend(counts.iter().map(|&c| fmt_count(c)));
        table.row(row);
    }
    let mean_as = as_ratio.iter().sum::<f64>() / as_ratio.len() as f64;
    let mean_hy = hybrid_overhead.iter().sum::<f64>() / hybrid_overhead.len() as f64;
    Experiment {
        figure: "Figure 6",
        title: "Message overhead (# of elements) vs data rate",
        table,
        paper_notes: vec![
            "total traffic under AS is around four times NONE".into(),
            "for PS and Hybrid the increase is only around 10% (sweeping checkpointing)".into(),
            "Hybrid incurs at least 80% less message overhead than AS".into(),
        ],
        measured_notes: vec![
            format!("AS/NONE ratio: {:.2}×", mean_as),
            format!("Hybrid-500ms overhead vs NONE: {:.1}%", mean_hy * 100.0),
            format!(
                "Hybrid saves {:.0}% of AS's extra traffic",
                (1.0 - mean_hy / (mean_as - 1.0)) * 100.0
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig06_quick_orders_configs() {
        let e = fig06(&Runner::serial(), Scale::Quick, 1);
        assert_eq!(e.table.len(), 3);
        // AS ratio near 4, hybrid overhead small.
        assert!(e.measured_notes[0].contains('3') || e.measured_notes[0].contains('4'));
    }
}
