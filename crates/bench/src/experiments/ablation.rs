//! Ablation: sweeping vs synchronous vs individual checkpointing.
//!
//! Reproduces the §III-B claim (from the authors' earlier work \[11\]) that
//! sweeping checkpointing carries an order of magnitude less checkpoint
//! traffic than the synchronous and individual variants: trimming right
//! before snapshotting means a checkpoint message carries almost no
//! output-queue data, while timer-driven variants ship up to a full
//! interval's worth of unacknowledged elements per checkpoint.

use sps_engine::SubjobId;
use sps_ha::{CheckpointProtocol, HaMode, HaSimulation};
use sps_metrics::{fmt_count, MsgClass, Table};
use sps_sim::SimTime;
use sps_workloads::eval_chain_job;

use crate::common::{f2, Experiment, Scale};
use crate::runner::Runner;

#[derive(Debug, Clone, Copy)]
struct ProtocolRun {
    ckpt_elements: u64,
    ckpt_messages: u64,
    data_elements: u64,
    sink_mean_delay_ms: f64,
    sink_accepted: u64,
}

fn run(protocol: CheckpointProtocol, sim_secs: u64, seed: u64) -> ProtocolRun {
    let job = eval_chain_job();
    let n_subjobs = job.subjob_count();
    let mut builder = HaSimulation::builder(job)
        .mode(HaMode::Passive)
        .source_rate(1_000.0)
        .seed(seed)
        .tune(|c| c.checkpoint_protocol = protocol);
    for sj in 0..n_subjobs as u32 {
        builder = builder.subjob_mode(SubjobId(sj), HaMode::Passive);
    }
    let mut sim = builder.build();
    sim.run_until(SimTime::from_secs(sim_secs));
    let report = sim.report();
    ProtocolRun {
        ckpt_elements: report.counters.elements(MsgClass::Checkpoint),
        ckpt_messages: report.counters.messages(MsgClass::Checkpoint),
        data_elements: report.counters.elements(MsgClass::Data),
        sink_mean_delay_ms: report.sink_mean_delay_ms,
        sink_accepted: report.sink_accepted,
    }
}

/// The checkpointing-protocol ablation.
pub fn ablation_checkpointing(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let sim_secs = scale.pick(20, 5);
    let protocols = [
        CheckpointProtocol::Sweeping,
        CheckpointProtocol::Synchronous,
        CheckpointProtocol::Individual,
    ];
    let mut runs = runner
        .map(protocols.to_vec(), |p| run(p, sim_secs, seed))
        .into_iter();
    let mut table = Table::new(vec![
        "protocol",
        "ckpt_elements",
        "ckpt_messages",
        "avg_elements_per_ckpt",
        "ckpt_overhead_vs_data_pct",
        "sink_delay_ms",
        "sink_accepted",
    ]);
    let mut by_protocol = Vec::new();
    for p in protocols {
        let r = runs.next().expect("one run per protocol");
        by_protocol.push((p, r));
        table.row(vec![
            p.to_string(),
            fmt_count(r.ckpt_elements),
            fmt_count(r.ckpt_messages),
            f2(r.ckpt_elements as f64 / r.ckpt_messages.max(1) as f64),
            f2(r.ckpt_elements as f64 / r.data_elements as f64 * 100.0),
            f2(r.sink_mean_delay_ms),
            fmt_count(r.sink_accepted),
        ]);
    }
    let sweeping = by_protocol[0].1;
    let sync = by_protocol[1].1;
    let individual = by_protocol[2].1;
    Experiment {
        figure: "§III-B ablation",
        title: "Sweeping vs synchronous vs individual checkpointing",
        table,
        paper_notes: vec![
            "sweeping checkpointing is ~4× faster and incurs ~10% of the message overhead of \
             synchronous and individual checkpointing"
                .into(),
        ],
        measured_notes: vec![
            format!(
                "sweeping checkpoint traffic is {:.0}% of synchronous and {:.0}% of individual",
                sweeping.ckpt_elements as f64 / sync.ckpt_elements.max(1) as f64 * 100.0,
                sweeping.ckpt_elements as f64 / individual.ckpt_elements.max(1) as f64 * 100.0
            ),
            format!(
                "every protocol delivered all elements ({} / {} / {})",
                fmt_count(sweeping.sink_accepted),
                fmt_count(sync.sink_accepted),
                fmt_count(individual.sink_accepted)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeping_carries_least_checkpoint_traffic() {
        let sweeping = run(CheckpointProtocol::Sweeping, 5, 9);
        let individual = run(CheckpointProtocol::Individual, 5, 9);
        let sync = run(CheckpointProtocol::Synchronous, 5, 9);
        assert!(
            (sweeping.ckpt_elements as f64) < 0.5 * individual.ckpt_elements as f64,
            "sweeping {} vs individual {}",
            sweeping.ckpt_elements,
            individual.ckpt_elements
        );
        assert!(
            (sweeping.ckpt_elements as f64) < 0.7 * sync.ckpt_elements as f64,
            "sweeping {} vs synchronous {}",
            sweeping.ckpt_elements,
            sync.ckpt_elements
        );
        // Correctness is identical: same elements delivered.
        assert_eq!(sweeping.sink_accepted, individual.sink_accepted);
        assert_eq!(sweeping.sink_accepted, sync.sink_accepted);
    }
}
