//! Ablation of the hybrid's §IV-B optimization techniques ("Gains of the
//! Hybrid Optimization Techniques", §V-B):
//!
//! * **pre-deployment** — resume a suspended copy instead of deploying on
//!   demand ("only 1/4 of the time", a ~75 % reduction);
//! * **early connection** — flip `is_active` instead of connecting on
//!   demand ("a reduction of about 50 % in latency");
//! * **read state on rollback** — the primary jumps to the secondary's
//!   state instead of chewing through everything that arrived during the
//!   failure ("the reduction ... can be the failure duration when data
//!   rates are high").

use sps_cluster::MachineId;
use sps_engine::SubjobId;
use sps_ha::{HaConfig, HaMode, HaSimulation};
use sps_metrics::Table;
use sps_sim::{SimDuration, SimTime};
use sps_workloads::{eval_chain_job, single_failure};

use crate::common::{f2, Experiment, Scale};
use crate::runner::Runner;

/// One configuration's recovery outcome.
#[derive(Debug, Clone, Copy)]
pub struct OptOutcome {
    /// Detection → copy serving (resume or deploy+connect), ms.
    pub ready_ms: f64,
    /// Detection → first new sink output, ms.
    pub total_ms: f64,
    /// Mean delay of elements born in the 4 s after the failure clears
    /// (the rollback catch-up cost), ms.
    pub post_rollback_delay_ms: f64,
}

fn run(tune: impl Fn(&mut HaConfig), failure_secs: u64, seed: u64) -> OptOutcome {
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(seed)
        .log_sink_accepts(true)
        .tune(tune)
        .build();
    let failure_at = SimTime::from_secs(3);
    let failure_end = failure_at + SimDuration::from_secs(failure_secs);
    sim.inject_spike_windows(
        MachineId(1),
        &single_failure(failure_at, SimDuration::from_secs(failure_secs)),
    );
    sim.run_until(failure_end + SimDuration::from_secs(6));
    let t = sim
        .recovery_timeline(SubjobId(1), failure_at)
        .expect("recovery happened");
    let (inside, _) = sim.world().sinks()[0].latency().mean_inside_outside(&[(
        failure_end.as_secs_f64(),
        (failure_end + SimDuration::from_secs(4)).as_secs_f64(),
    )]);
    OptOutcome {
        ready_ms: t.ready_ms - t.detected_ms,
        total_ms: t.total_ms(),
        post_rollback_delay_ms: inside,
    }
}

/// The §IV-B optimization ablation.
pub fn ablation_hybrid_optimizations(runner: &Runner, scale: Scale, seed: u64) -> Experiment {
    let failure_secs = scale.pick(5, 3);
    let runs = scale.pick(5, 2);
    type Tune = fn(&mut HaConfig);
    let configs: [(&str, Tune); 4] = [
        ("full hybrid", |_| {}),
        ("no pre-deployment", |c| c.hybrid_predeploy = false),
        ("no early connections", |c| {
            c.hybrid_early_connections = false
        }),
        ("no read-state rollback", |c| {
            c.read_state_on_rollback = false
        }),
    ];
    let mut table = Table::new(vec![
        "configuration",
        "ready_after_detect_ms",
        "recovery_total_ms",
        "post_rollback_delay_ms",
    ]);
    // One cell per (configuration, repetition), in the serial visiting order.
    let mut cells = Vec::new();
    for (_, tune) in configs {
        for i in 0..runs {
            cells.push((tune, seed + i));
        }
    }
    let mut outcomes = runner
        .map(cells, |(tune, s)| run(tune, failure_secs, s))
        .into_iter();

    let mut rows = Vec::new();
    for (name, _tune) in configs {
        let mut acc = (0.0, 0.0, 0.0);
        for _ in 0..runs {
            let o = outcomes.next().expect("one outcome per cell");
            acc.0 += o.ready_ms;
            acc.1 += o.total_ms;
            acc.2 += o.post_rollback_delay_ms;
        }
        let n = runs as f64;
        let o = OptOutcome {
            ready_ms: acc.0 / n,
            total_ms: acc.1 / n,
            post_rollback_delay_ms: acc.2 / n,
        };
        rows.push((name, o));
        table.row(vec![
            name.into(),
            f2(o.ready_ms),
            f2(o.total_ms),
            f2(o.post_rollback_delay_ms),
        ]);
    }
    let full = rows[0].1;
    let no_pre = rows[1].1;
    let no_read = rows[3].1;
    Experiment {
        figure: "§IV-B/§V-B ablation",
        title: "Gains of the hybrid optimization techniques",
        table,
        paper_notes: vec![
            "pre-deployment: resuming takes only 1/4 of on-demand deployment (~75% reduction)"
                .into(),
            "early connection: ~50% reduction in (re)connection latency".into(),
            "read state on rollback: avoids reprocessing all data arriving during the failure"
                .into(),
        ],
        measured_notes: vec![
            format!(
                "pre-deployment cuts the ready stage {:.0} ms → {:.0} ms ({:.0}% reduction)",
                no_pre.ready_ms,
                full.ready_ms,
                (1.0 - full.ready_ms / no_pre.ready_ms) * 100.0
            ),
            format!(
                "read-state rollback cuts post-failure delay {:.0} ms → {:.0} ms",
                no_read.post_rollback_delay_ms, full.post_rollback_delay_ms
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predeployment_cuts_ready_time_by_three_quarters() {
        let full = run(|_| {}, 3, 31);
        let no_pre = run(|c| c.hybrid_predeploy = false, 3, 31);
        let reduction = 1.0 - full.ready_ms / no_pre.ready_ms;
        assert!(
            (0.6..0.9).contains(&reduction),
            "paper: ~75% reduction; got {reduction:.2} ({} vs {})",
            full.ready_ms,
            no_pre.ready_ms
        );
    }

    #[test]
    fn early_connections_cut_switchover_latency() {
        let full = run(|_| {}, 3, 32);
        let no_early = run(|c| c.hybrid_early_connections = false, 3, 32);
        assert!(
            no_early.ready_ms > full.ready_ms + 30.0,
            "on-demand connection adds latency: {} vs {}",
            full.ready_ms,
            no_early.ready_ms
        );
    }

    #[test]
    fn read_state_rollback_avoids_catchup() {
        let full = run(|_| {}, 4, 33);
        let no_read = run(|c| c.read_state_on_rollback = false, 4, 33);
        assert!(
            no_read.post_rollback_delay_ms > 3.0 * full.post_rollback_delay_ms,
            "without read-state the primary chews backlog: {} vs {}",
            full.post_rollback_delay_ms,
            no_read.post_rollback_delay_ms
        );
    }

    #[test]
    fn all_ablated_configurations_are_lossless() {
        for tune in [
            (|c: &mut HaConfig| c.hybrid_predeploy = false) as fn(&mut HaConfig),
            |c| c.hybrid_early_connections = false,
            |c| c.read_state_on_rollback = false,
            |c| {
                c.hybrid_predeploy = false;
                c.hybrid_early_connections = false;
                c.read_state_on_rollback = false;
            },
        ] {
            let mut sim = HaSimulation::builder(eval_chain_job())
                .mode(HaMode::None)
                .subjob_mode(SubjobId(1), HaMode::Hybrid)
                .source_rate(600.0)
                .seed(34)
                .tune(tune)
                .build();
            sim.inject_spike_windows(
                MachineId(1),
                &single_failure(SimTime::from_secs(2), SimDuration::from_secs(3)),
            );
            sim.stop_sources_at(SimTime::from_secs(7));
            sim.run_for(SimDuration::from_secs(12));
            assert_eq!(
                sim.world().sinks()[0].accepted(),
                sim.world().sources()[0].produced(),
                "ablated hybrid lost elements"
            );
        }
    }
}
