//! The `--audit-out` protocol-audit capture: an instrumented hybrid run
//! with the streaming auditor riding the trace bus, whose deterministic
//! end-of-run report is written to the requested path.
//!
//! Figure binaries call [`maybe_capture`] after printing their tables with
//! the destination from [`crate::common::RunOpts`] (`--audit-out <path>`
//! or `SPS_AUDIT_OUT`). Like the other capture modules the audited run is
//! separate from the figure runs, and all status goes to stderr, so figure
//! stdout stays byte-identical with and without the flag (the CI
//! no-perturbation step checks exactly this). The campaign binaries
//! instead attach the same auditor to their real sweep cells.

use std::path::Path;

use sps_audit::Auditor;
use sps_cluster::{ChaosPlan, FaultProfile, MachineId, SpikeWindow};
use sps_ha::{HaMode, HaSimulation};
use sps_sim::SimTime;
use sps_workloads::eval_chain_job;

/// Runs a fully protected hybrid scenario with the auditor installed and
/// returns its `(report, violation_total)`.
///
/// The scenario exercises every audited invariant in ~12 simulated
/// seconds: steady traffic with checkpoint-acked primaries (sink delivery,
/// §III-B ack ordering), a transient 1 s spike (switch-over + rollback), a
/// fail-stop (promotion, standby re-provisioning, epoch advance), and a
/// chaos loss/duplication window under the reliable control layer
/// (receiver dedup, retransmit bookkeeping). Every subjob is Hybrid, so
/// the run is lossless and drains to quiescence — the auditor's strictest
/// expectations.
pub fn run_audited_scenario(seed: u64) -> (String, u64) {
    let chaos = ChaosPlan::default()
        .loss_window(
            SimTime::from_millis(2_500),
            SimTime::from_millis(3_500),
            FaultProfile::loss(0.05).with_duplication(0.05),
        )
        .link_window(
            SimTime::from_millis(2_500),
            SimTime::from_millis(3_500),
            MachineId(1),
            MachineId(6),
            FaultProfile::loss(0.5),
        );
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(seed)
        .tune(|c| {
            c.failstop_miss_threshold = 15;
            c.reliable_control = true;
        })
        .chaos(chaos)
        .trace_probe(Box::new(Auditor::new()))
        .audit_expectations(true, true)
        .build();
    sim.inject_spike_windows(
        MachineId(1),
        &[SpikeWindow {
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
            share: 1.0,
        }],
    );
    sim.fail_stop_at(MachineId(1), SimTime::from_secs(4));
    sim.stop_sources_at(SimTime::from_secs(8));
    sim.run_until(SimTime::from_secs(12));
    sim.finish_probes();
    let report = sim.audit_report().unwrap_or_default();
    (report, sim.audit_violations())
}

/// If an audit destination was requested, runs the audited scenario and
/// writes the checker report there, reporting the verdict on stderr.
pub fn maybe_capture(path: Option<&Path>, seed: u64) {
    let Some(path) = path else {
        return;
    };
    let (report, violations) = run_audited_scenario(seed);
    match std::fs::write(path, &report) {
        Ok(()) => eprintln!(
            "audit: {violations} violations, report written to {}",
            path.display()
        ),
        Err(e) => eprintln!(
            "warning: could not write audit report to {}: {e}",
            path.display()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audited_scenario_is_clean_and_deterministic() {
        let (report, violations) = run_audited_scenario(2010);
        assert_eq!(violations, 0, "{report}");
        assert!(report.contains("verdict: PASS"), "{report}");
        assert!(
            report.contains("expectations: lossless=true quiescent=true"),
            "{report}"
        );
        let (again, _) = run_audited_scenario(2010);
        assert_eq!(report, again, "audit report must be seed-deterministic");
    }
}
