//! The `--metrics-out` registry capture: an instrumented hybrid run whose
//! deterministic scrape series is exported as JSONL or CSV.
//!
//! Figure binaries call [`maybe_capture`] after printing their tables with
//! the destination from [`crate::common::RunOpts`] (`--metrics-out <path>`
//! or `SPS_METRICS_OUT`). Like the flight-recorder capture, the metrics run
//! is separate from the figure runs — figure numbers never come from an
//! instrumented simulation — and all status output goes to **stderr** so a
//! figure binary's stdout is byte-identical with and without the flag (the
//! CI no-perturbation check relies on this).

use std::path::Path;

use sps_cluster::{MachineId, SpikeWindow};
use sps_engine::SubjobId;
use sps_ha::{HaMode, HaSimulation};
use sps_metrics::Registry;
use sps_sim::SimTime;
use sps_workloads::eval_chain_job;

/// Runs a metrics- and lineage-instrumented hybrid scenario and returns the
/// scraped registry.
///
/// The scenario covers steady state, a transient failure (switch-over and
/// rollback), and the reliable control layer, so the series contains
/// cluster gauges, data-plane counters, the sink delay histogram, and
/// recovery phase counters.
pub fn capture_metrics(seed: u64) -> Registry {
    let job = eval_chain_job();
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(seed)
        .tune(|c| c.reliable_control = true)
        .collect_metrics(true)
        .lineage(true)
        .build();
    // Transient failure: switch-over on the miss, rollback on recovery.
    sim.inject_spike_windows(
        MachineId(1),
        &[SpikeWindow {
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
            share: 1.0,
        }],
    );
    sim.stop_sources_at(SimTime::from_secs(4));
    sim.run_until(SimTime::from_secs(5));
    sim.world()
        .metrics()
        .expect("metrics enabled by builder")
        .clone()
}

/// If a metrics destination was requested, runs the capture scenario and
/// writes its scrape series there — CSV when the path ends in `.csv`,
/// JSONL otherwise. Status goes to stderr only.
pub fn maybe_capture(path: Option<&Path>, seed: u64) {
    let Some(path) = path else {
        return;
    };
    let registry = capture_metrics(seed);
    let csv = path.extension().is_some_and(|e| e == "csv");
    match std::fs::File::create(path) {
        Ok(mut f) => {
            let res = if csv {
                registry.export_csv(&mut f)
            } else {
                registry.export_jsonl(&mut f)
            };
            match res {
                Ok(()) => eprintln!(
                    "metrics: {} scrapes written to {}",
                    registry.scrape_count(),
                    path.display()
                ),
                Err(e) => eprintln!(
                    "warning: could not write metrics to {}: {e}",
                    path.display()
                ),
            }
        }
        Err(e) => eprintln!("warning: could not create {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_scrapes_and_counts() {
        let reg = capture_metrics(2010);
        assert!(reg.scrape_count() >= 40, "scrapes: {}", reg.scrape_count());
        assert!(reg.counter_total("data_plane", "elements_sent") > 0);
        assert!(reg.counter_total("sink", "accepted") > 0);
        assert!(reg.counter_total("recovery", "detected") >= 1);
        assert!(reg.counter_total("recovery", "switchover_complete") >= 1);
        let jsonl = reg.to_jsonl_string();
        assert!(jsonl.contains("\"component\":\"cluster\""));
        assert!(jsonl.contains("\"name\":\"e2e_delay_ms\""));
    }

    #[test]
    fn capture_is_deterministic() {
        let a = capture_metrics(7).to_jsonl_string();
        let b = capture_metrics(7).to_jsonl_string();
        assert_eq!(a, b);
    }
}
