//! Quickstart: run the paper's evaluation job under hybrid HA, inject one
//! transient failure, and watch the switch-over / rollback cycle.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybrid_ha::prelude::*;

fn main() {
    // The paper's §V-A job: 8 synthetic PEs in a chain, 4 subjobs of 2 PEs,
    // 1K elements/s, selectivity 1.
    let job = Job::chain("eval", &OperatorSpec::synthetic_default(), 8, 4);
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(42)
        .log_sink_accepts(true)
        .build();

    // Overload subjob 1's primary machine between t = 3 s and t = 8 s: the
    // classic transient failure — the machine is alive but too busy to do
    // stream work or answer heartbeats.
    let failure_start = SimTime::from_secs(3);
    sim.inject_spike_windows(
        MachineId(1),
        &single_failure(failure_start, SimDuration::from_secs(5)),
    );
    sim.stop_sources_at(SimTime::from_secs(12));
    sim.run_for(SimDuration::from_secs(14));

    println!("timeline of HA events:");
    for e in sim.world().ha_events() {
        println!("  {:>8.3}s  {:?}", e.at.as_secs_f64(), e.kind);
    }

    let produced = sim.world().sources()[0].produced();
    let report = sim.report();
    println!();
    println!("elements produced : {produced}");
    println!(
        "elements delivered: {} (duplicates dropped: {})",
        report.sink_accepted, report.sink_duplicates
    );
    println!("mean E2E delay    : {:.2} ms", report.sink_mean_delay_ms);
    println!("p99 E2E delay     : {:.2} ms", report.sink_p99_delay_ms);
    println!("traffic (elements): {}", report.total_overhead_elements());

    if let Some(t) = sim.recovery_timeline(SubjobId(1), failure_start) {
        println!();
        println!("recovery decomposition (from failure inception):");
        println!(
            "  detection        : {:>7.1} ms (first heartbeat miss)",
            t.detection_ms()
        );
        println!(
            "  resume standby   : {:>7.1} ms (pre-deployed, early-connected)",
            t.deploy_or_resume_ms()
        );
        println!("  retransmit+reproc: {:>7.1} ms", t.retrans_reprocess_ms());
        println!("  total            : {:>7.1} ms", t.total_ms());
    }

    assert_eq!(
        report.sink_accepted, produced,
        "hybrid recovery is lossless"
    );
    println!();
    println!("OK: no element was lost across switch-over and rollback.");
}
