//! Traffic-monitoring example: bursty camera feeds with three jobs sharing
//! one standby machine (the paper's multiplexing gain, Fig 5).
//!
//! The paper's intro cites London's traffic cameras (8 TB/day). Bursty
//! sensor feeds are exactly the traffic that makes benchmarking-style
//! detection false-alarm; here the hybrid's heartbeat detector rides
//! through bursts while three protected subjobs share a single secondary
//! machine.
//!
//! ```sh
//! cargo run --release --example traffic_monitoring
//! ```

use hybrid_ha::prelude::*;

fn run(shared_secondary: bool, seed: u64) -> RunReport {
    let job = eval_chain_job();
    let shared = [1u32, 2, 3];
    let placement = if shared_secondary {
        multiplexed_placement(&job, &shared)
    } else {
        Placement::default_for(&job)
    };
    let primaries: Vec<MachineId> = shared
        .iter()
        .map(|&s| placement.primaries[s as usize])
        .collect();
    let mut builder = HaSimulation::builder(job)
        .mode(HaMode::None)
        .placement(placement)
        .source_profile(
            0,
            RateProfile::Bursty {
                base_per_sec: 400.0,
                burst_per_sec: 1_600.0,
                mean_on: SimDuration::from_millis(500),
                mean_off: SimDuration::from_millis(1_500),
            },
            PayloadGen::Synthetic,
        )
        .seed(seed);
    for &s in &shared {
        builder = builder.subjob_mode(SubjobId(s), HaMode::Hybrid);
    }
    let mut sim = builder.build();
    let horizon = SimTime::from_secs(40);
    for (i, &m) in primaries.iter().enumerate() {
        let mut rng = SimRng::seed_from(seed + 31 * i as u64);
        sim.inject_spike_windows(
            m,
            &failure_load(
                0.15,
                SimDuration::from_secs(4),
                marginal_spike_share(0.45),
                horizon,
                &mut rng,
            ),
        );
    }
    sim.run_until(horizon);
    sim.report()
}

fn main() {
    println!("camera-feed chain, bursty input, 15% failure time on three primaries\n");
    let dedicated = run(false, 3);
    let shared = run(true, 3);

    let mut table = Table::new(vec![
        "standby_layout",
        "mean_delay_ms",
        "p99_delay_ms",
        "delivered",
        "standby_machines",
    ]);
    table.row(vec![
        "dedicated (3 machines)".into(),
        format!("{:.2}", dedicated.sink_mean_delay_ms),
        format!("{:.2}", dedicated.sink_p99_delay_ms),
        dedicated.sink_accepted.to_string(),
        "3".into(),
    ]);
    table.row(vec![
        "multiplexed (1 machine)".into(),
        format!("{:.2}", shared.sink_mean_delay_ms),
        format!("{:.2}", shared.sink_p99_delay_ms),
        shared.sink_accepted.to_string(),
        "1".into(),
    ]);
    print!("{table}");
    println!();
    println!(
        "sharing one secondary across three primaries costs {:.0}% extra mean delay \
         while saving two standby machines (paper: <25% up to 20% failure time).",
        (shared.sink_mean_delay_ms / dedicated.sink_mean_delay_ms - 1.0) * 100.0
    );
    assert_eq!(
        shared.sink_accepted, dedicated.sink_accepted,
        "both layouts are lossless"
    );
}
