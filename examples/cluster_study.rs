//! The §II-B measurement study: how often do shared machines become
//! transiently unavailable, and for how long?
//!
//! Synthesizes the paper's 83-machine, 24-hour CPU-sampling study (see the
//! substitution notes in DESIGN.md) and prints the Figure 1–3 data: the
//! weather app's per-machine slowdown, and the CDFs of inter-failure time
//! and spike duration.
//!
//! ```sh
//! cargo run --release --example cluster_study
//! ```

use hybrid_ha::prelude::*;
use hybrid_ha::workloads::{run_weather_app, ClusterStudy, ClusterStudyConfig, WeatherAppConfig};

fn main() {
    let mut rng = SimRng::seed_from(2010);

    // Figure 1: the weather-forecast app on shared machines.
    let weather = run_weather_app(&WeatherAppConfig::default(), &mut rng);
    println!("weather app, mean processing time per machine (machines 55+ are shared):");
    for (machine, secs) in &weather.rows {
        let bar = "#".repeat((secs * 40.0) as usize);
        println!("  m{machine:>2}  {secs:.3}s  {bar}");
    }

    // Figures 2-3: one simulated hour across 83 machines (pass a longer
    // duration for the full 24 h study).
    let config = ClusterStudyConfig {
        duration: SimDuration::from_secs(3_600),
        ..ClusterStudyConfig::default()
    };
    let study = ClusterStudy::run(&config, &mut rng);
    println!();
    println!(
        "{} of {} machines exhibited transient unavailability in one hour",
        study.machines_with_spikes(),
        study.machines.len()
    );

    let mut inter = study.inter_failure_cdf();
    let mut duration = study.duration_cdf();
    println!();
    println!(
        "machines spiking more often than once/60s : {:.0}%  (paper: >75%)",
        inter.fraction_at_most(60.0) * 100.0
    );
    println!(
        "machines with mean spike duration < 10s   : {:.0}%  (paper: ~70%)",
        duration.fraction_at_most(10.0) * 100.0
    );
    println!(
        "machines with mean spike duration > 20s   : {:.0}%  (paper: ~20%)",
        (1.0 - duration.fraction_at_most(20.0)) * 100.0
    );

    println!();
    println!("CDF of mean inter-failure time (s):");
    for (x, f) in inter.curve(11) {
        println!("  {x:>8.1}s  {}", "*".repeat((f * 50.0) as usize));
    }
    println!("CDF of mean spike duration (s):");
    for (x, f) in duration.curve(11) {
        println!("  {x:>8.1}s  {}", "*".repeat((f * 50.0) as usize));
    }
}
