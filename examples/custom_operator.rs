//! Bring-your-own-operator example: a stateful EWMA anomaly detector
//! implemented outside the library, deployed under hybrid HA, and recovered
//! with its state intact.
//!
//! ```sh
//! cargo run --release --example custom_operator
//! ```

use std::sync::Arc;

use hybrid_ha::engine::{DataElement, Emitter, OperatorState, Payload};
use hybrid_ha::prelude::*;

/// Flags elements whose value deviates from a running EWMA by more than
/// `threshold` standard-deviation estimates. Emits only anomalies.
///
/// Determinism and a faithful snapshot/restore are the operator contract:
/// replicas and recovered copies must behave identically.
#[derive(Debug)]
struct AnomalyDetector {
    alpha: f64,
    threshold: f64,
    mean: f64,
    var: f64,
    seen: u64,
    anomalies: u64,
}

impl AnomalyDetector {
    fn new(alpha: f64, threshold: f64) -> Self {
        AnomalyDetector {
            alpha,
            threshold,
            mean: 0.0,
            var: 1.0,
            seen: 0,
            anomalies: 0,
        }
    }
}

impl Operator for AnomalyDetector {
    fn process(&mut self, _port: usize, input: &DataElement, out: &mut Emitter) {
        self.seen += 1;
        let deviation = input.value - self.mean;
        let sigma = self.var.sqrt().max(1e-9);
        if self.seen > 20 && deviation.abs() > self.threshold * sigma {
            self.anomalies += 1;
            out.emit0(Payload {
                key: input.key,
                value: deviation / sigma, // the z-score
                size_bytes: input.size_bytes,
            });
        }
        self.mean += self.alpha * deviation;
        self.var = (1.0 - self.alpha) * (self.var + self.alpha * deviation * deviation);
    }

    fn demand_secs(&self, _input: &DataElement) -> f64 {
        0.000_2
    }

    fn state_size_elements(&self) -> u64 {
        1 // mean/var/counters: one element-unit of checkpoint payload
    }

    fn snapshot(&self) -> OperatorState {
        OperatorState(vec![
            self.mean,
            self.var,
            self.seen as f64,
            self.anomalies as f64,
        ])
    }

    fn restore(&mut self, state: &OperatorState) {
        self.mean = state.0[0];
        self.var = state.0[1];
        self.seen = state.0[2] as u64;
        self.anomalies = state.0[3] as u64;
    }
}

#[derive(Debug)]
struct AnomalyFactory;

impl OperatorFactory for AnomalyFactory {
    fn build(&self) -> Box<dyn Operator> {
        Box::new(AnomalyDetector::new(0.02, 2.5))
    }
}

fn main() {
    // parse (built-in) → anomaly detector (custom) in two subjobs.
    let mut b = JobBuilder::new("anomaly");
    let feed = b.add_source("sensor-feed");
    let alerts = b.add_sink("alerting");
    let parse = b.add_pe(
        "parse",
        OperatorSpec::Map {
            scale: 1.0,
            offset: 0.0,
            demand_secs: 0.000_2,
        },
    );
    let detect = b.add_pe("detect", OperatorSpec::Custom(Arc::new(AnomalyFactory)));
    b.connect_source(feed, parse, 0);
    b.connect(parse, 0, detect, 0);
    b.connect_sink(detect, 0, alerts);
    b.subjobs(vec![vec![parse], vec![detect]]);
    let job = b.build().expect("valid topology");

    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_profile(
            0,
            RateProfile::Constant { per_sec: 1_500.0 },
            PayloadGen::Market {
                base_price: 100.0,
                max_volume: 50,
            },
        )
        .seed(7)
        .build();

    // A transient failure hits the detector's machine mid-run; its EWMA
    // state must survive the switch-over and rollback.
    sim.inject_spike_windows(
        MachineId(1),
        &single_failure(SimTime::from_secs(4), SimDuration::from_secs(3)),
    );
    sim.stop_sources_at(SimTime::from_secs(12));
    sim.run_for(SimDuration::from_secs(16));

    let world = sim.world();
    println!("HA events:");
    for e in world.ha_events() {
        println!("  {:>7.3}s  {:?}", e.at.as_secs_f64(), e.kind);
    }
    let ticks = world.sources()[0].produced();
    let alerts = world.sinks()[0].accepted();
    println!();
    println!("sensor ticks     : {ticks}");
    println!(
        "anomaly alerts   : {alerts} ({:.2}%)",
        alerts as f64 / ticks as f64 * 100.0
    );
    println!(
        "alert p99 delay  : {:.2} ms",
        sim.world_mut().sinks_mut()[0]
            .latency_mut()
            .quantile_ms(0.99)
            .unwrap_or(0.0)
    );
    assert!(alerts > 0, "the random-walk feed produces some anomalies");
    println!();
    println!("OK: a custom stateful operator recovered under hybrid HA.");
}
