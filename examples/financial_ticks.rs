//! Financial-analysis example: a market-data VWAP pipeline under transient
//! failures, comparing all four HA modes.
//!
//! The paper's motivating applications include financial analysis, where
//! delay-sensitive consumers cannot tolerate multi-second stalls every time
//! a co-located job spikes. This example runs a parse → filter → VWAP →
//! audit pipeline over a random-walk tick feed, injects the §V-B failure
//! load on the aggregation subjob's machines, and prints the
//! delay/overhead tradeoff per mode.
//!
//! ```sh
//! cargo run --release --example financial_ticks
//! ```

use hybrid_ha::prelude::*;

fn run(mode: HaMode, seed: u64) -> (RunReport, u64) {
    let job = financial_job(16);
    let placement = Placement::default_for(&job);
    let primary = placement.primaries[1];
    let secondary = placement.secondaries[1].expect("default placement");
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), mode)
        .source_profile(
            0,
            RateProfile::Constant { per_sec: 2_000.0 },
            PayloadGen::Market {
                base_price: 100.0,
                max_volume: 500,
            },
        )
        .seed(seed)
        .build();
    let horizon = SimTime::from_secs(30);
    let mut rng = SimRng::seed_from(seed ^ 0xF1);
    // VWAP subjob machine load ≈ 2000/s × (0.4 + 0.1) ms = 1.0... the VWAP
    // stage sees 2000/s but audit sees only 2000/16; actual load ≈ 0.81.
    let share = marginal_spike_share(0.82);
    sim.inject_spike_windows(
        primary,
        &failure_load(0.3, SimDuration::from_secs(4), share, horizon, &mut rng),
    );
    sim.inject_spike_windows(
        secondary,
        &failure_load(0.3, SimDuration::from_secs(4), share, horizon, &mut rng),
    );
    sim.run_until(horizon);
    let switchovers = sim
        .world()
        .ha_events()
        .iter()
        .filter(|e| e.kind == HaEventKind::SwitchoverComplete)
        .count() as u64;
    (sim.report(), switchovers)
}

fn main() {
    println!("VWAP pipeline (2,000 ticks/s), 30% failure time on the aggregation subjob\n");
    let mut table = Table::new(vec![
        "mode",
        "mean_delay_ms",
        "p99_delay_ms",
        "vwap_outputs",
        "traffic_elements",
        "switchovers",
    ]);
    let mut rows = Vec::new();
    for mode in HaMode::ALL {
        let (report, switchovers) = run(mode, 7);
        table.row(vec![
            mode.to_string(),
            format!("{:.2}", report.sink_mean_delay_ms),
            format!("{:.2}", report.sink_p99_delay_ms),
            report.sink_accepted.to_string(),
            report.total_overhead_elements().to_string(),
            switchovers.to_string(),
        ]);
        rows.push((mode, report));
    }
    print!("{table}");

    let none = rows
        .iter()
        .find(|(m, _)| *m == HaMode::None)
        .map(|(_, r)| r)
        .expect("NONE row");
    let hybrid = rows
        .iter()
        .find(|(m, _)| *m == HaMode::Hybrid)
        .map(|(_, r)| r)
        .expect("Hybrid row");
    let active = rows
        .iter()
        .find(|(m, _)| *m == HaMode::Active)
        .map(|(_, r)| r)
        .expect("AS row");
    println!();
    println!(
        "hybrid delivers {:.1}% of NONE's mean delay at {:.0}% of AS's extra traffic",
        hybrid.sink_mean_delay_ms / none.sink_mean_delay_ms * 100.0,
        (hybrid.total_overhead_elements() as f64 - none.total_overhead_elements() as f64)
            / (active.total_overhead_elements() as f64 - none.total_overhead_elements() as f64)
            * 100.0
    );
    println!("every mode delivered the same deduplicated VWAP stream to the trading desk.");
}
