//! The tracing layer's end-to-end contracts: deterministic dumps, faithful
//! recovery-span decomposition, and read-only (non-perturbing) sampling.

use hybrid_ha::prelude::*;

/// An instrumented hybrid run with one transient failure, returning the
/// recorder's JSONL dump.
fn traced_run(seed: u64) -> String {
    let recorder = SharedRecorder::default();
    let job = eval_chain_job();
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(seed)
        .trace_sink(Box::new(recorder.clone()))
        .build();
    sim.inject_spike_windows(
        MachineId(1),
        &[SpikeWindow {
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
            share: 1.0,
        }],
    );
    sim.stop_sources_at(SimTime::from_secs(4));
    sim.run_until(SimTime::from_secs(5));
    recorder.to_jsonl_string()
}

#[test]
fn same_seed_gives_byte_identical_trace_dumps() {
    let a = traced_run(99);
    let b = traced_run(99);
    assert!(!a.is_empty());
    assert_eq!(a, b, "traced simulation must be deterministic");
}

#[test]
fn different_seeds_give_different_dumps() {
    // Sanity check on the determinism test itself: the dump actually
    // depends on the randomness, so byte-equality above is meaningful.
    assert_ne!(traced_run(99), traced_run(100));
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // Identical scenario with and without a sink: the trace layer must be
    // purely observational, so the headline numbers agree exactly.
    let run = |traced: bool| {
        let mut builder = HaSimulation::builder(eval_chain_job())
            .mode(HaMode::Hybrid)
            .source_rate(1_000.0)
            .seed(7);
        if traced {
            builder = builder.trace_sink(Box::new(SharedRecorder::default()));
        }
        let mut sim = builder.build();
        sim.inject_spike_windows(
            MachineId(1),
            &[SpikeWindow {
                start: SimTime::from_secs(1),
                end: SimTime::from_secs(3),
                share: 1.0,
            }],
        );
        sim.stop_sources_at(SimTime::from_secs(5));
        sim.run_until(SimTime::from_secs(7));
        // Not `events_processed`: the sampler adds its own timer events.
        // Everything physical must be bit-identical.
        let r = sim.report();
        (
            r.sink_accepted,
            r.sink_duplicates,
            r.sink_mean_delay_ms.to_bits(),
            r.sink_p99_delay_ms.to_bits(),
        )
    };
    assert_eq!(run(false), run(true));
}

/// One fail-stop under the given mode; returns the recovery spans observed
/// by a telemetry fold over the trace.
fn failstop_spans(mode: HaMode) -> Vec<RecoverySpan> {
    let recorder = SharedRecorder::default();
    let job = eval_chain_job();
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), mode)
        .source_rate(1_000.0)
        .seed(42)
        .tune(|c| c.failstop_miss_threshold = 10)
        .trace_sink(Box::new(recorder.clone()))
        .build();
    sim.fail_stop_at(MachineId(1), SimTime::from_secs(2));
    sim.stop_sources_at(SimTime::from_secs(6));
    sim.run_until(SimTime::from_secs(8));
    let mut telemetry = Telemetry::new();
    recorder.with(|r| {
        let records: Vec<TraceRecord> = r.records().copied().collect();
        telemetry.ingest_all(records.iter());
    });
    assert_eq!(
        telemetry.injects(),
        &[(SimTime::from_secs(2), 1, true)],
        "exactly the injected fail-stop is recorded as ground truth"
    );
    telemetry.recovery_spans()
}

fn assert_chained_and_monotone(spans: &[RecoverySpan]) {
    for w in spans.windows(2) {
        assert_eq!(w[0].end, w[1].start, "spans chain without gaps/overlap");
    }
    for s in spans {
        assert!(s.start <= s.end, "span bounds are ordered: {s:?}");
    }
}

#[test]
fn active_standby_has_no_detection_spans() {
    // AS runs both replicas and never monitors, so a fail-stop produces no
    // recovery phases at all — downstream dedup just keeps consuming the
    // surviving replica.
    let spans = failstop_spans(HaMode::Active);
    assert!(spans.is_empty(), "AS must not emit phases: {spans:?}");
}

#[test]
fn passive_standby_decomposes_into_detect_deploy_connect() {
    let spans = failstop_spans(HaMode::Passive);
    let phases: Vec<RecoveryPhase> = spans.iter().map(|s| s.phase).collect();
    assert_eq!(
        phases,
        vec![
            RecoveryPhase::Detected,
            RecoveryPhase::PsDeployed,
            RecoveryPhase::PsConnected,
        ],
        "PS recovery is detect → deploy → connect"
    );
    let detections = spans
        .iter()
        .filter(|s| s.phase == RecoveryPhase::Detected)
        .count();
    assert_eq!(detections, 1, "exactly one detection span");
    assert_chained_and_monotone(&spans);
    // The detection span starts at the failure and covers 3 heartbeat
    // intervals (PS declares on the third consecutive miss).
    assert_eq!(spans[0].start, SimTime::from_secs(2));
    assert!(
        (spans[0].millis() - 300.0).abs() < 50.0,
        "PS detection ≈ 3 × 100 ms heartbeats, got {:.1} ms",
        spans[0].millis()
    );
}

#[test]
fn hybrid_decomposes_into_detect_switchover_then_promotion() {
    let spans = failstop_spans(HaMode::Hybrid);
    let phases: Vec<RecoveryPhase> = spans.iter().map(|s| s.phase).collect();
    assert_eq!(
        phases,
        vec![
            RecoveryPhase::Detected,
            RecoveryPhase::SwitchoverComplete,
            RecoveryPhase::Promoted,
            RecoveryPhase::SecondaryReady,
        ],
        "hybrid fail-stop is detect → switch-over → promote → new secondary"
    );
    let detections = spans
        .iter()
        .filter(|s| s.phase == RecoveryPhase::Detected)
        .count();
    assert_eq!(detections, 1, "exactly one detection span");
    assert_chained_and_monotone(&spans);
    // Hybrid declares on the first miss: detection ≈ 1 heartbeat interval.
    assert_eq!(spans[0].start, SimTime::from_secs(2));
    assert!(
        (spans[0].millis() - 100.0).abs() < 50.0,
        "hybrid detection ≈ 1 × 100 ms heartbeat, got {:.1} ms",
        spans[0].millis()
    );
    // Switch-over (resume of the pre-deployed secondary) ≈ resume_delay.
    assert!(
        (spans[1].millis() - 50.0).abs() < 25.0,
        "switch-over ≈ 50 ms resume, got {:.1} ms",
        spans[1].millis()
    );
}

#[test]
fn queue_snapshots_cover_every_deployed_instance() {
    let recorder = SharedRecorder::default();
    let job = eval_chain_job();
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::Hybrid)
        .source_rate(500.0)
        .seed(5)
        .trace_sink(Box::new(recorder.clone()))
        .build();
    sim.stop_sources_at(SimTime::from_secs(2));
    sim.run_until(SimTime::from_secs(3));
    let mut telemetry = Telemetry::new();
    recorder.with(|r| {
        let records: Vec<TraceRecord> = r.records().copied().collect();
        telemetry.ingest_all(records.iter());
    });
    // All 8 chain PEs are hybrid-protected: primary (0) and secondary (1)
    // instances must both appear in the periodic PE snapshots.
    for pe in 0..8u32 {
        for replica in [0u8, 1] {
            assert!(
                !telemetry.pe_queue_series(pe, replica).is_empty(),
                "no snapshots for pe {pe} replica {replica}"
            );
        }
    }
    // Machine load series exist and stay in [0, 1].
    let machines: Vec<u32> = telemetry.machines().collect();
    assert!(!machines.is_empty());
    for m in machines {
        for &(_, load) in telemetry.machine_load_series(m) {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&load),
                "load {load} out of range"
            );
        }
    }
}
