//! Behavioural tests of the hybrid state machine: event ordering,
//! false-alarm tolerance, repeated switch/rollback cycles, and fail-stop
//! promotion.

use hybrid_ha::prelude::*;

fn eval_sim(seed: u64) -> HaSimulation {
    HaSimulation::builder(eval_chain_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(800.0)
        .seed(seed)
        .log_sink_accepts(true)
        .build()
}

fn kinds_of(sim: &HaSimulation) -> Vec<HaEventKind> {
    sim.world().ha_events().iter().map(|e| e.kind).collect()
}

#[test]
fn lifecycle_events_are_well_ordered() {
    let mut sim = eval_sim(1);
    sim.inject_spike_windows(
        MachineId(1),
        &single_failure(SimTime::from_secs(2), SimDuration::from_secs(3)),
    );
    sim.run_for(SimDuration::from_secs(8));
    let events = sim.world().ha_events();
    let order: Vec<HaEventKind> = events.iter().map(|e| e.kind).collect();
    assert_eq!(
        order,
        vec![
            HaEventKind::Detected,
            HaEventKind::SwitchoverComplete,
            HaEventKind::RollbackStarted,
            HaEventKind::RollbackComplete,
        ]
    );
    for pair in events.windows(2) {
        assert!(pair[0].at <= pair[1].at, "events in time order");
    }
    // Detection on the first miss: within ~3 heartbeat intervals.
    let detect_ms = events[0]
        .at
        .saturating_since(SimTime::from_secs(2))
        .as_millis_f64();
    assert!(
        (50.0..350.0).contains(&detect_ms),
        "1-miss detection, got {detect_ms} ms"
    );
    // Rollback soon after the failure clears.
    let rollback_ms = events[2]
        .at
        .saturating_since(SimTime::from_secs(5))
        .as_millis_f64();
    assert!(
        rollback_ms < 1_000.0,
        "rollback within 1 s of recovery, got {rollback_ms} ms"
    );
}

#[test]
fn repeated_cycles_accumulate_no_errors() {
    let mut sim = eval_sim(2);
    for k in 0..4 {
        sim.inject_spike_windows(
            MachineId(1),
            &single_failure(SimTime::from_secs(2 + 4 * k), SimDuration::from_secs(2)),
        );
    }
    sim.stop_sources_at(SimTime::from_secs(20));
    sim.run_for(SimDuration::from_secs(24));
    let kinds = kinds_of(&sim);
    let switches = kinds
        .iter()
        .filter(|k| **k == HaEventKind::SwitchoverComplete)
        .count();
    let rollbacks = kinds
        .iter()
        .filter(|k| **k == HaEventKind::RollbackComplete)
        .count();
    assert!(switches >= 4, "one switch-over per spike, got {switches}");
    assert_eq!(
        switches, rollbacks,
        "every switch-over eventually rolls back"
    );
    assert_eq!(
        sim.world().sinks()[0].accepted(),
        sim.world().sources()[0].produced(),
        "lossless across {switches} cycles"
    );
}

#[test]
fn secondary_is_refreshed_in_memory_while_suspended() {
    let mut sim = eval_sim(3);
    sim.run_for(SimDuration::from_secs(3));
    let world = sim.world();
    // Subjob 1 = PEs 2 and 3; the suspended secondary's restored counter
    // state tracks the primary via checkpoint refreshes.
    let sj = world.subjob(SubjobId(1));
    assert!(!sj.stored.is_empty(), "checkpoints stored at the secondary");
    let sec = world
        .instance(PeId(2), Replica::Secondary)
        .expect("pre-deployed");
    assert!(
        sec.is_suspended(),
        "secondary suspended in normal operation"
    );
    assert_eq!(sec.processed_total(), 0, "suspended copy consumed no CPU");
}

#[test]
fn false_alarm_rolls_back_cheaply() {
    // A spike shorter than the resume delay: the switch-over may complete
    // or be aborted, but either way the system returns to Normal and no
    // data is lost.
    let mut sim = eval_sim(4);
    sim.inject_spike_windows(
        MachineId(1),
        &single_failure(SimTime::from_secs(2), SimDuration::from_millis(160)),
    );
    sim.stop_sources_at(SimTime::from_secs(6));
    sim.run_for(SimDuration::from_secs(9));
    assert_eq!(
        sim.world().sinks()[0].accepted(),
        sim.world().sources()[0].produced()
    );
    let sj = sim.world().subjob(SubjobId(1));
    assert_eq!(format!("{:?}", sj.state), "Normal");
}

#[test]
fn failstop_promotes_and_redeploys_standby() {
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(800.0)
        .seed(5)
        .tune(|c| c.failstop_miss_threshold = 15)
        .build();
    sim.fail_stop_at(MachineId(1), SimTime::from_secs(2));
    sim.stop_sources_at(SimTime::from_secs(8));
    sim.run_for(SimDuration::from_secs(12));
    let kinds = kinds_of(&sim);
    assert!(kinds.contains(&HaEventKind::Promoted), "{kinds:?}");
    assert!(kinds.contains(&HaEventKind::SecondaryReady), "{kinds:?}");
    assert!(
        !kinds.contains(&HaEventKind::RollbackStarted),
        "a dead machine never triggers rollback: {kinds:?}"
    );
    let sj = sim.world().subjob(SubjobId(1));
    assert_eq!(sj.primary_replica, Replica::Secondary, "roles swapped");
    assert_eq!(
        sim.world().sinks()[0].accepted(),
        sim.world().sources()[0].produced(),
        "fail-stop recovery is lossless"
    );
    // The replacement standby exists, suspended, on a spare machine.
    let standby = sim
        .world()
        .instance(PeId(2), Replica::Primary)
        .expect("redeployed");
    assert!(standby.is_suspended());
}

#[test]
fn ps_and_hybrid_share_detection_but_differ_in_reaction() {
    let run = |mode: HaMode| {
        let mut sim = HaSimulation::builder(eval_chain_job())
            .mode(HaMode::None)
            .subjob_mode(SubjobId(1), mode)
            .source_rate(800.0)
            .seed(6)
            .build();
        sim.inject_spike_windows(
            MachineId(1),
            &single_failure(SimTime::from_secs(2), SimDuration::from_secs(3)),
        );
        sim.run_for(SimDuration::from_secs(8));
        sim.world()
            .ha_events()
            .iter()
            .find(|e| e.kind == HaEventKind::Detected)
            .map(|e| e.at)
            .expect("detected")
    };
    let hybrid = run(HaMode::Hybrid);
    let ps = run(HaMode::Passive);
    let h_ms = hybrid
        .saturating_since(SimTime::from_secs(2))
        .as_millis_f64();
    let p_ms = ps.saturating_since(SimTime::from_secs(2)).as_millis_f64();
    assert!(
        p_ms > h_ms + 150.0,
        "PS (3 misses) declares at least 2 intervals later: {h_ms} vs {p_ms}"
    );
}

#[test]
fn switch_overhead_tracks_rate_times_duration() {
    let overhead = |rate: f64| {
        let mut sim = HaSimulation::builder(eval_chain_job())
            .mode(HaMode::None)
            .subjob_mode(SubjobId(1), HaMode::Hybrid)
            .source_rate(rate)
            .seed(7)
            .build();
        sim.inject_spike_windows(
            MachineId(1),
            &single_failure(SimTime::from_secs(2), SimDuration::from_secs(4)),
        );
        sim.run_for(SimDuration::from_secs(9));
        sim.world().subjob(SubjobId(1)).switch_overhead_elements
    };
    let low = overhead(400.0);
    let high = overhead(1_200.0);
    assert!(
        high as f64 > 2.0 * low as f64,
        "overhead grows with rate (Fig 10): {low} vs {high}"
    );
    assert!(
        (low as f64) > 400.0 * 3.0 * 0.5,
        "roughly rate x duration: {low}"
    );
}
