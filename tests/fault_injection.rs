//! Fault-injection tests beyond CPU spikes: network partitions between the
//! checkpoint path, message loss into recovery, and secondary-machine
//! failures.

use hybrid_ha::prelude::*;

fn sim_with(mode: HaMode, seed: u64) -> HaSimulation {
    HaSimulation::builder(eval_chain_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), mode)
        .source_rate(600.0)
        .seed(seed)
        .build()
}

/// Under the default placement for the 8-PE/4-subjob chain: primaries on
/// machines 0–3, sink on 4, secondaries on 5–8.
const SJ1_PRIMARY: MachineId = MachineId(1);
const SJ1_SECONDARY: MachineId = MachineId(6);

#[test]
fn partitioned_checkpoint_path_still_recovers_losslessly() {
    // Cut the primary→secondary link before any checkpoint flows: the
    // standby's state stays empty/stale, so recovery must fall back to
    // retransmission from upstream retention — and still lose nothing.
    let mut sim = sim_with(HaMode::Hybrid, 51);
    sim.world_mut()
        .cluster_mut()
        .network_mut()
        .set_partitioned(SJ1_PRIMARY, SJ1_SECONDARY, true);
    sim.inject_spike_windows(
        SJ1_PRIMARY,
        &single_failure(SimTime::from_secs(2), SimDuration::from_secs(3)),
    );
    sim.stop_sources_at(SimTime::from_secs(7));
    sim.run_for(SimDuration::from_secs(12));
    let world = sim.world();
    assert_eq!(
        world.counters().elements(MsgClass::Checkpoint),
        0,
        "the partition blocked every checkpoint"
    );
    assert!(
        world
            .ha_events()
            .iter()
            .any(|e| e.kind == HaEventKind::SwitchoverComplete),
        "heartbeats flow monitor->primary, so detection still works"
    );
    assert_eq!(
        world.sinks()[0].accepted(),
        world.sources()[0].produced(),
        "retention-based retransmission covers a checkpoint-less standby"
    );
}

#[test]
fn healed_partition_resumes_checkpointing() {
    let mut sim = sim_with(HaMode::Passive, 52);
    sim.world_mut()
        .cluster_mut()
        .network_mut()
        .set_partitioned(SJ1_PRIMARY, SJ1_SECONDARY, true);
    sim.run_for(SimDuration::from_secs(3));
    assert_eq!(sim.world().counters().elements(MsgClass::Checkpoint), 0);
    sim.world_mut()
        .cluster_mut()
        .network_mut()
        .set_partitioned(SJ1_PRIMARY, SJ1_SECONDARY, false);
    sim.run_for(SimDuration::from_secs(3));
    assert!(
        sim.world().counters().elements(MsgClass::Checkpoint) > 0,
        "checkpointing resumes once the link heals"
    );
}

#[test]
fn partitioned_data_link_stalls_then_resumes_without_loss() {
    // Cut the machine-0 -> machine-1 data path (subjob 0 feeds subjob 1)
    // for two seconds. Like a stalled TCP connection, the upstream send
    // cursor must hold position so the backlog flows on heal — no element
    // may be skipped or permanently stashed behind a gap.
    let mut sim = sim_with(HaMode::None, 58);
    sim.world_mut()
        .cluster_mut()
        .network_mut()
        .set_partitioned(MachineId(0), SJ1_PRIMARY, true);
    sim.run_until(SimTime::from_secs(3));
    let stalled = sim.world().sinks()[0].accepted();
    sim.world_mut()
        .cluster_mut()
        .network_mut()
        .set_partitioned(MachineId(0), SJ1_PRIMARY, false);
    sim.stop_sources_at(SimTime::from_secs(6));
    sim.run_for(SimDuration::from_secs(8));
    let world = sim.world();
    assert_eq!(stalled, 0, "nothing crossed the cut link");
    assert_eq!(
        world.sinks()[0].accepted(),
        world.sources()[0].produced(),
        "healed link delivers the retained backlog in order"
    );
}

#[test]
fn secondary_machine_failstop_leaves_primary_serving() {
    // Losing the standby is not a data-plane event: the primary keeps
    // serving; the subjob simply has no cover.
    let mut sim = sim_with(HaMode::Hybrid, 53);
    sim.fail_stop_at(SJ1_SECONDARY, SimTime::from_secs(2));
    sim.stop_sources_at(SimTime::from_secs(6));
    sim.run_for(SimDuration::from_secs(9));
    let world = sim.world();
    assert_eq!(
        world.sinks()[0].accepted(),
        world.sources()[0].produced(),
        "data plane unaffected by standby loss"
    );
}

#[test]
fn failure_hitting_two_subjobs_simultaneously() {
    // Machines 1 and 2 fail together; both hybrid subjobs must switch and
    // recover independently.
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .subjob_mode(SubjobId(2), HaMode::Hybrid)
        .source_rate(600.0)
        .seed(54)
        .build();
    for m in [MachineId(1), MachineId(2)] {
        sim.inject_spike_windows(
            m,
            &single_failure(SimTime::from_secs(2), SimDuration::from_secs(3)),
        );
    }
    sim.stop_sources_at(SimTime::from_secs(8));
    sim.run_for(SimDuration::from_secs(12));
    let world = sim.world();
    let switched: Vec<SubjobId> = world
        .ha_events()
        .iter()
        .filter(|e| e.kind == HaEventKind::SwitchoverComplete)
        .map(|e| e.subjob)
        .collect();
    assert!(switched.contains(&SubjobId(1)), "{switched:?}");
    assert!(switched.contains(&SubjobId(2)), "{switched:?}");
    assert_eq!(world.sinks()[0].accepted(), world.sources()[0].produced());
}

#[test]
fn failstop_during_switchover_still_promotes() {
    // The machine dies *after* the transient detection already switched the
    // subjob over: promotion must finish the job.
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(600.0)
        .seed(55)
        .tune(|c| c.failstop_miss_threshold = 12)
        .build();
    // A spike begins, then the machine dies outright mid-spike.
    sim.inject_spike_windows(
        MachineId(1),
        &single_failure(SimTime::from_secs(2), SimDuration::from_secs(10)),
    );
    sim.fail_stop_at(MachineId(1), SimTime::from_millis(2_600));
    sim.stop_sources_at(SimTime::from_secs(8));
    sim.run_for(SimDuration::from_secs(12));
    let world = sim.world();
    let kinds: Vec<HaEventKind> = world.ha_events().iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&HaEventKind::SwitchoverComplete),
        "{kinds:?}"
    );
    assert!(kinds.contains(&HaEventKind::Promoted), "{kinds:?}");
    assert_eq!(world.sinks()[0].accepted(), world.sources()[0].produced());
}

#[test]
fn failstop_racing_the_rollback_still_promotes() {
    // Sweep the death instant across the moments after the spike clears —
    // including the sub-millisecond window where the rollback has started
    // but the state-read cannot be delivered. Every timing must end with a
    // serving copy and no loss.
    for offset_us in [0u64, 2_000, 7_000, 7_300, 7_500, 8_000, 20_000, 150_000] {
        let mut sim = HaSimulation::builder(eval_chain_job())
            .mode(HaMode::None)
            .subjob_mode(SubjobId(1), HaMode::Hybrid)
            .source_rate(600.0)
            .seed(57)
            .tune(|c| c.failstop_miss_threshold = 10)
            .build();
        sim.inject_spike_windows(
            MachineId(1),
            &single_failure(SimTime::from_secs(2), SimDuration::from_secs(3)),
        );
        // The spike ends at 5 s; rollback begins a few ms later.
        sim.fail_stop_at(
            MachineId(1),
            SimTime::from_secs(5) + SimDuration::from_micros(offset_us),
        );
        sim.stop_sources_at(SimTime::from_secs(10));
        sim.run_for(SimDuration::from_secs(15));
        let world = sim.world();
        assert_eq!(
            world.sinks()[0].accepted(),
            world.sources()[0].produced(),
            "offset {offset_us}us lost data: {:?}",
            world.ha_events()
        );
        let sj = world.subjob(SubjobId(1));
        assert_eq!(
            format!("{:?}", sj.state),
            "Normal",
            "offset {offset_us}us left state {:?}: {:?}",
            sj.state,
            world.ha_events()
        );
    }
}

#[test]
fn back_to_back_failstops_exhaust_spares_gracefully() {
    // First fail-stop promotes and redeploys onto the first spare; killing
    // the new primary repeats the cycle onto the second spare; a third
    // fail-stop leaves no cover but the system must not panic or lose the
    // already-delivered stream.
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(600.0)
        .seed(56)
        .tune(|c| c.failstop_miss_threshold = 10)
        .build();
    sim.fail_stop_at(MachineId(1), SimTime::from_secs(2));
    sim.run_for(SimDuration::from_secs(6));
    let new_primary = sim.world().subjob(SubjobId(1)).primary_machine;
    assert_ne!(new_primary, MachineId(1), "promoted off the dead machine");
    sim.fail_stop_at(new_primary, sim.now() + SimDuration::from_secs(1));
    sim.stop_sources_at(sim.now() + SimDuration::from_secs(4));
    sim.run_for(SimDuration::from_secs(10));
    let world = sim.world();
    let promotions = world
        .ha_events()
        .iter()
        .filter(|e| e.kind == HaEventKind::Promoted)
        .count();
    assert_eq!(promotions, 2, "two promotions: {:?}", world.ha_events());
    assert_eq!(
        world.sinks()[0].accepted(),
        world.sources()[0].produced(),
        "no loss across repeated promotions"
    );
}
