//! Topology-shape tests beyond the paper's chain: fan-out (one stream, two
//! consumers), trees with two sources, and recovery on each.

use hybrid_ha::prelude::*;

/// source → split → {left, right} → two sinks; the split subjob is
/// protected.
fn fanout_job() -> Job {
    let mut b = JobBuilder::new("fanout");
    let src = b.add_source("src");
    let sink_l = b.add_sink("left-out");
    let sink_r = b.add_sink("right-out");
    let split = b.add_pe(
        "split",
        OperatorSpec::Map {
            scale: 1.0,
            offset: 0.0,
            demand_secs: 2e-4,
        },
    );
    let left = b.add_pe("left-count", OperatorSpec::Counter { demand_secs: 2e-4 });
    let right = b.add_pe(
        "right-agg",
        OperatorSpec::WindowAggregate {
            window: 4,
            agg: AggKind::Sum,
            demand_secs: 2e-4,
        },
    );
    b.connect_source(src, split, 0);
    b.connect(split, 0, left, 0);
    b.connect(split, 0, right, 0);
    b.connect_sink(left, 0, sink_l);
    b.connect_sink(right, 0, sink_r);
    b.subjobs(vec![vec![split], vec![left], vec![right]]);
    b.build().expect("valid fan-out topology")
}

fn produced_and_sunk(sim: &HaSimulation) -> (u64, u64, u64) {
    let produced = sim.world().sources().iter().map(|s| s.produced()).sum();
    (
        produced,
        sim.world().sinks()[0].accepted(),
        sim.world().sinks()[1].accepted(),
    )
}

#[test]
fn fanout_delivers_both_branches_without_failures() {
    let mut sim = HaSimulation::builder(fanout_job())
        .mode(HaMode::None)
        .source_rate(800.0)
        .seed(61)
        .build();
    sim.stop_sources_at(SimTime::from_secs(5));
    sim.run_for(SimDuration::from_secs(8));
    let (produced, left, right) = produced_and_sunk(&sim);
    assert_eq!(left, produced, "counter branch is selectivity-1");
    assert_eq!(right, produced / 4, "window-4 branch aggregates");
}

#[test]
fn fanout_split_recovers_losslessly_under_hybrid() {
    let mut sim = HaSimulation::builder(fanout_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(0), HaMode::Hybrid)
        .source_rate(800.0)
        .seed(62)
        .build();
    // Subjob 0 (the split) is on machine 0 under the default placement.
    sim.inject_spike_windows(
        MachineId(0),
        &single_failure(SimTime::from_secs(2), SimDuration::from_secs(2)),
    );
    sim.stop_sources_at(SimTime::from_secs(6));
    sim.run_for(SimDuration::from_secs(10));
    let (produced, left, right) = produced_and_sunk(&sim);
    assert_eq!(left, produced, "left branch lossless across recovery");
    assert_eq!(right, produced / 4, "right branch lossless across recovery");
    assert!(sim
        .world()
        .ha_events()
        .iter()
        .any(|e| e.kind == HaEventKind::SwitchoverComplete));
}

#[test]
fn fanout_trim_respects_the_slower_branch() {
    // Make the right branch slow: the split's output queue may only trim
    // to the slower consumer's acknowledged position.
    let mut b = JobBuilder::new("skewed");
    let src = b.add_source("src");
    let sink_l = b.add_sink("fast");
    let sink_r = b.add_sink("slow");
    let split = b.add_pe(
        "split",
        OperatorSpec::Map {
            scale: 1.0,
            offset: 0.0,
            demand_secs: 1e-4,
        },
    );
    let fast = b.add_pe("fast", OperatorSpec::Counter { demand_secs: 1e-4 });
    let slow = b.add_pe(
        "slow",
        OperatorSpec::Counter {
            demand_secs: 1.5e-3,
        },
    );
    b.connect_source(src, split, 0);
    b.connect(split, 0, fast, 0);
    b.connect(split, 0, slow, 0);
    b.connect_sink(fast, 0, sink_l);
    b.connect_sink(slow, 0, sink_r);
    b.subjobs(vec![vec![split], vec![fast], vec![slow]]);
    let job = b.build().expect("valid");

    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .source_rate(900.0)
        .seed(63)
        .build();
    sim.run_for(SimDuration::from_secs(3));
    // The slow branch (1.5 ms/element at 900/s) is oversubscribed and
    // lags; the split's retained queue must cover its position.
    let split_inst = sim
        .world()
        .instance(PeId(0), Replica::Primary)
        .expect("deployed");
    let q = split_inst.output(0);
    let acks: Vec<u64> = q.connections().iter().map(|c| c.acked).collect();
    let min_ack = *acks.iter().min().unwrap();
    let max_ack = *acks.iter().max().unwrap();
    assert!(max_ack > min_ack + 100, "branches diverge: {acks:?}");
    assert_eq!(
        q.trimmed_through(),
        min_ack,
        "trim floor is the minimum across branches"
    );
    assert!(q.retained_len() as u64 >= max_ack - min_ack);
}

#[test]
fn tree_with_two_sources_under_active_standby() {
    let mut sim = HaSimulation::builder(tree_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(2), HaMode::Active)
        .source_rate(500.0)
        .seed(64)
        .build();
    sim.inject_spike_windows(
        MachineId(2),
        &single_failure(SimTime::from_secs(2), SimDuration::from_secs(3)),
    );
    sim.stop_sources_at(SimTime::from_secs(6));
    sim.run_for(SimDuration::from_secs(10));
    let produced: u64 = sim.world().sources().iter().map(|s| s.produced()).sum();
    assert_eq!(
        sim.world().sinks()[0].accepted(),
        produced,
        "AS masks the join-stage failure"
    );
    assert!(sim.world().ha_events().is_empty(), "AS needs no events");
    // Both join replicas consumed from both branches.
    for replica in Replica::BOTH {
        let inst = sim.world().instance(PeId(2), replica).expect("AS pair");
        assert!(inst.processed_total() > 0, "{replica} worked");
        assert_eq!(inst.input_ports(), 2);
    }
}
