//! Placement-variation tests: dedicated source machines, protecting the
//! head subjob, and builder validation.

use hybrid_ha::prelude::*;

/// A placement with the source on its own machine (machine 9), so the head
/// subjob's machine can fail without touching the feed.
fn dedicated_source_placement(job: &Job) -> Placement {
    let mut p = Placement::default_for(job);
    let dedicated = MachineId(p.machine_count() as u32);
    for m in &mut p.sources {
        *m = dedicated;
    }
    p
}

#[test]
fn head_subjob_recovers_from_source_retention() {
    // Protect subjob 0 and fail its machine outright: recovery has no
    // upstream PE to retransmit from — the retained *source* queue is the
    // only copy of the unacknowledged data.
    let job = eval_chain_job();
    let placement = dedicated_source_placement(&job);
    let head_machine = placement.primaries[0];
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(0), HaMode::Hybrid)
        .placement(placement)
        .source_rate(700.0)
        .seed(81)
        .build();
    sim.inject_spike_windows(
        head_machine,
        &single_failure(SimTime::from_secs(2), SimDuration::from_secs(3)),
    );
    sim.stop_sources_at(SimTime::from_secs(7));
    sim.run_for(SimDuration::from_secs(11));
    let world = sim.world();
    assert!(
        world
            .ha_events()
            .iter()
            .any(|e| e.kind == HaEventKind::SwitchoverComplete),
        "head subjob switched over: {:?}",
        world.ha_events()
    );
    assert_eq!(
        world.sinks()[0].accepted(),
        world.sources()[0].produced(),
        "source retention covered the head subjob's recovery"
    );
}

#[test]
fn head_subjob_survives_failstop_with_dedicated_source() {
    let job = eval_chain_job();
    let placement = dedicated_source_placement(&job);
    let head_machine = placement.primaries[0];
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(0), HaMode::Hybrid)
        .placement(placement)
        .source_rate(700.0)
        .seed(82)
        .tune(|c| c.failstop_miss_threshold = 12)
        .build();
    sim.fail_stop_at(head_machine, SimTime::from_secs(2));
    sim.stop_sources_at(SimTime::from_secs(7));
    sim.run_for(SimDuration::from_secs(11));
    let world = sim.world();
    assert!(world
        .ha_events()
        .iter()
        .any(|e| e.kind == HaEventKind::Promoted));
    assert_eq!(
        world.sinks()[0].accepted(),
        world.sources()[0].produced(),
        "promotion after head-machine death is lossless"
    );
}

#[test]
fn source_queue_is_trimmed_in_steady_state() {
    // Retention must not grow without bound: the head subjob's
    // checkpoint-driven acknowledgments trim the source queue.
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::Passive)
        .source_rate(1_000.0)
        .seed(83)
        .build();
    sim.run_for(SimDuration::from_secs(6));
    let q = sim.world().sources()[0].queue();
    assert!(
        q.retained_len() < 2_500,
        "source retention bounded by ~2 checkpoint intervals, got {}",
        q.retained_len()
    );
    assert!(q.trimmed_through() > 3_000, "steady trimming happened");
}

#[test]
#[should_panic(expected = "needs a secondary machine")]
fn missing_secondary_machine_is_rejected_at_build() {
    let job = eval_chain_job();
    let mut placement = Placement::default_for(&job);
    placement.secondaries[1] = None;
    let _ = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .placement(placement)
        .build();
}

#[test]
#[should_panic(expected = "one mode per subjob")]
fn wrong_mode_vector_is_rejected() {
    // Constructing the world directly with a short mode vector must fail
    // loudly (the builder normally guarantees the right length).
    use hybrid_ha::ha::{HaConfig, HaWorld, PayloadGen, RateProfile};
    let job = eval_chain_job();
    let placement = Placement::default_for(&job);
    let _ = HaWorld::new(
        job,
        HaConfig::default(),
        vec![HaMode::None], // 1 mode for 4 subjobs
        placement,
        vec![(
            RateProfile::Constant { per_sec: 100.0 },
            PayloadGen::Synthetic,
        )],
        NetworkConfig::default(),
        false,
    );
}
