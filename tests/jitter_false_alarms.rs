//! The §IV-B false-alarm claim: "with a heartbeat interval of 110 ms, and
//! the CPU usage around 60%, a false alarm occurs once every 11 minutes on
//! average" — and the hybrid affords them because rollback is cheap.

use hybrid_ha::prelude::*;

fn run_ten_minutes(seed: u64) -> (usize, u64, u64) {
    let job = eval_chain_job();
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(1_000.0) // ~60% CPU on the protected machine
        .seed(seed)
        .tune(|c| c.heartbeat_interval = SimDuration::from_millis(110))
        .build();
    let horizon = SimTime::from_secs(600);
    // OS jitter on the primary at its ~60% ambient load; NO real spikes, so
    // every declaration is a false alarm.
    sim.inject_jitter(MachineId(1), &JitterProfile::default(), horizon, 0.6);
    sim.stop_sources_at(horizon);
    sim.run_until(horizon + SimDuration::from_secs(5));
    let world = sim.world();
    let false_alarms = world
        .ha_events()
        .iter()
        .filter(|e| e.kind == HaEventKind::Detected)
        .count();
    (
        false_alarms,
        world.sources()[0].produced(),
        world.sinks()[0].accepted(),
    )
}

#[test]
fn false_alarms_are_rare_and_harmless_at_sixty_percent_load() {
    // Seeds chosen so the Pareto duration draws include at least one stall
    // comfortably longer than the 110 ms heartbeat interval: a stall only
    // converts into a missed heartbeat when a full ping deadline falls
    // inside it, so marginal (~120 ms) stalls convert by phase luck alone.
    let mut total_fa = 0;
    for seed in [66, 90, 151] {
        let (fa, produced, accepted) = run_ten_minutes(seed);
        total_fa += fa;
        // "our hybrid method can afford false alarms to certain extent,
        // because it can quickly roll back" — and loses nothing doing so.
        assert_eq!(
            accepted, produced,
            "false alarms must be harmless (seed {seed})"
        );
        assert!(
            fa <= 6,
            "paper: ~1 false alarm per 11 min at 60% CPU; got {fa} in 10 min (seed {seed})"
        );
    }
    // The mechanism exists: across 30 simulated minutes at least one
    // jitter-induced false alarm fires.
    assert!(
        (1..=12).contains(&total_fa),
        "expected a handful of false alarms across 30 min, got {total_fa}"
    );
}

#[test]
fn without_jitter_there_are_no_false_alarms() {
    let job = eval_chain_job();
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(1_000.0)
        .seed(74)
        .tune(|c| c.heartbeat_interval = SimDuration::from_millis(110))
        .build();
    sim.run_until(SimTime::from_secs(300));
    assert!(
        sim.world().ha_events().is_empty(),
        "steady 60% application load alone must not trip the detector: {:?}",
        sim.world().ha_events()
    );
}
