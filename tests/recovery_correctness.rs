//! Cross-crate recovery-correctness tests: under every HA mode and failure
//! pattern, the system must deliver every element exactly once to the sink
//! (the paper's guarantee for deterministic PEs, §II-C).

use hybrid_ha::prelude::*;

/// A chain whose last PE is a stateful counter: the sink's final value
/// equals the number of elements that passed through, so state corruption
/// or replay errors surface as a wrong count, not just a wrong cardinality.
fn counting_job() -> Job {
    let mut b = JobBuilder::new("counting");
    let src = b.add_source("src");
    let sink = b.add_sink("sink");
    let a = b.add_pe(
        "map",
        OperatorSpec::Map {
            scale: 1.0,
            offset: 0.0,
            demand_secs: 3e-4,
        },
    );
    let c = b.add_pe("count", OperatorSpec::Counter { demand_secs: 3e-4 });
    let d = b.add_pe(
        "tail",
        OperatorSpec::Map {
            scale: 1.0,
            offset: 0.0,
            demand_secs: 3e-4,
        },
    );
    let e = b.add_pe("tail2", OperatorSpec::Counter { demand_secs: 3e-4 });
    b.connect_source(src, a, 0);
    b.connect(a, 0, c, 0);
    b.connect(c, 0, d, 0);
    b.connect(d, 0, e, 0);
    b.connect_sink(e, 0, sink);
    b.subjobs(vec![vec![a, c], vec![d, e]]);
    b.build().expect("valid")
}

fn run_with_failures(mode: HaMode, spikes: &[(u64, u64)], seed: u64) -> (u64, u64) {
    let mut sim = HaSimulation::builder(counting_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(0), mode)
        .source_rate(600.0)
        .seed(seed)
        .build();
    for &(s, e) in spikes {
        sim.inject_spike_windows(
            MachineId(0),
            &[SpikeWindow {
                start: SimTime::from_millis(s),
                end: SimTime::from_millis(e),
                share: 1.0,
            }],
        );
    }
    sim.stop_sources_at(SimTime::from_secs(10));
    sim.run_for(SimDuration::from_secs(14));
    let produced = sim.world().sources()[0].produced();
    (produced, sim.world().sinks()[0].accepted())
}

#[test]
fn every_mode_is_lossless_under_one_failure() {
    for mode in HaMode::ALL {
        if mode == HaMode::None {
            continue; // NONE on a source-colocated machine never fully stalls
        }
        let (produced, accepted) = run_with_failures(mode, &[(2_000, 5_000)], 17);
        assert_eq!(accepted, produced, "{mode} lost or duplicated elements");
    }
}

#[test]
fn consecutive_failures_are_survived() {
    // The §II-C requirement: "under single or multiple consecutive
    // failures".
    for mode in [HaMode::Passive, HaMode::Hybrid] {
        let (produced, accepted) =
            run_with_failures(mode, &[(1_500, 3_000), (4_500, 6_000), (7_000, 8_200)], 23);
        assert_eq!(
            accepted, produced,
            "{mode} failed under consecutive failures"
        );
    }
}

#[test]
fn stateful_counter_value_is_exact_after_recovery() {
    let mut sim = HaSimulation::builder(counting_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(0), HaMode::Hybrid)
        .subjob_mode(SubjobId(1), HaMode::Hybrid)
        .source_rate(600.0)
        .seed(5)
        .log_sink_accepts(true)
        .build();
    sim.inject_spike_windows(
        MachineId(0),
        &[SpikeWindow {
            start: SimTime::from_secs(2),
            end: SimTime::from_secs(4),
            share: 1.0,
        }],
    );
    sim.inject_spike_windows(
        MachineId(1),
        &[SpikeWindow {
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(7),
            share: 1.0,
        }],
    );
    sim.stop_sources_at(SimTime::from_secs(9));
    sim.run_for(SimDuration::from_secs(13));
    let produced = sim.world().sources()[0].produced();
    let accepted = sim.world().sinks()[0].accepted();
    assert_eq!(accepted, produced);
    // The final sink element's sequence number equals the count: no element
    // was double-counted by a restored counter.
    let log = sim.world().sinks()[0].accept_log().expect("logging on");
    let max_seq = log
        .iter()
        .map(|(_, _, s)| *s)
        .max()
        .expect("elements flowed");
    assert_eq!(
        max_seq, produced,
        "stateful count drifted across recoveries"
    );
}

#[test]
fn tree_topology_recovers_losslessly() {
    // §VII future work: more complex PE topologies.
    let mut sim = HaSimulation::builder(tree_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(2), HaMode::Hybrid) // protect the join
        .source_rate(400.0)
        .seed(9)
        .build();
    // The join subjob lands on machine 2 under the default placement.
    sim.inject_spike_windows(
        MachineId(2),
        &[SpikeWindow {
            start: SimTime::from_secs(2),
            end: SimTime::from_secs(4),
            share: 1.0,
        }],
    );
    sim.stop_sources_at(SimTime::from_secs(8));
    sim.run_for(SimDuration::from_secs(12));
    let produced: u64 = sim.world().sources().iter().map(|s| s.produced()).sum();
    assert_eq!(
        sim.world().sinks()[0].accepted(),
        produced,
        "tree join lost elements across recovery"
    );
}

#[test]
fn active_standby_masks_failures_without_detection() {
    let mut sim = HaSimulation::builder(counting_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(0), HaMode::Active)
        .source_rate(600.0)
        .seed(31)
        .build();
    sim.inject_spike_windows(
        MachineId(0),
        &[SpikeWindow {
            start: SimTime::from_secs(2),
            end: SimTime::from_secs(6),
            share: 1.0,
        }],
    );
    sim.stop_sources_at(SimTime::from_secs(8));
    sim.run_for(SimDuration::from_secs(12));
    assert!(
        sim.world().ha_events().is_empty(),
        "AS needs no detection or switching"
    );
    let report = sim.report();
    assert_eq!(report.sink_accepted, sim.world().sources()[0].produced());
    assert!(
        report.sink_p99_delay_ms < 100.0,
        "the healthy copy keeps p99 low: {} ms",
        report.sink_p99_delay_ms
    );
}

#[test]
fn durable_checkpoints_also_recover() {
    // §VII extension: persist checkpoints at the secondary with disk
    // latency.
    let mut sim = HaSimulation::builder(counting_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(0), HaMode::Passive)
        .source_rate(600.0)
        .seed(41)
        .tune(|c| c.durable_checkpoints = true)
        .build();
    sim.inject_spike_windows(
        MachineId(0),
        &[SpikeWindow {
            start: SimTime::from_secs(2),
            end: SimTime::from_secs(5),
            share: 1.0,
        }],
    );
    sim.stop_sources_at(SimTime::from_secs(8));
    sim.run_for(SimDuration::from_secs(12));
    assert_eq!(
        sim.world().sinks()[0].accepted(),
        sim.world().sources()[0].produced()
    );
}
