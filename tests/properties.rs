//! Randomized end-to-end tests: random failure schedules and parameters
//! must never break exactly-once delivery or determinism. Driven by seeded
//! [`SimRng`] loops.

use hybrid_ha::prelude::*;

fn run_schedule(
    mode: HaMode,
    schedule: &[(u64, u64, f64)],
    rate: f64,
    seed: u64,
) -> (u64, u64, u64) {
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), mode)
        .source_rate(rate)
        .seed(seed)
        .build();
    for &(start_ms, len_ms, share) in schedule {
        sim.inject_spike_windows(
            MachineId(1),
            &[SpikeWindow {
                start: SimTime::from_millis(start_ms),
                end: SimTime::from_millis(start_ms + len_ms),
                share,
            }],
        );
    }
    sim.stop_sources_at(SimTime::from_secs(8));
    sim.run_for(SimDuration::from_secs(13));
    let world = sim.world();
    (
        world.sources()[0].produced(),
        world.sinks()[0].accepted(),
        world.sinks()[0].duplicates_dropped(),
    )
}

/// Up to 3 non-overlapping spikes inside the first 7 seconds.
fn random_schedule(rng: &mut SimRng) -> Vec<(u64, u64, f64)> {
    let count = rng.uniform_u64(1, 4);
    let mut t = 500u64;
    let mut schedule = Vec::new();
    for _ in 0..count {
        let gap = rng.uniform_u64(500, 2_000);
        let len = rng.uniform_u64(200, 1_500);
        let share = rng.uniform(0.5, 1.0);
        let start = t + gap;
        t = start + len;
        if start < 7_000 {
            let len = len.min(7_000u64.saturating_sub(start).max(1));
            schedule.push((start, len, share));
        }
    }
    schedule
}

fn exactly_once_under_random_failures(mode: HaMode, salt: u64) {
    // Each case is a full end-to-end simulation: keep the count small.
    let mut rng = SimRng::seed_from(0xE2E0 ^ salt);
    for case in 0..4 {
        let schedule = random_schedule(&mut rng);
        let seed = rng.uniform_u64(0, 1_000);
        let (produced, accepted, _) = run_schedule(mode, &schedule, 700.0, seed);
        assert_eq!(
            accepted, produced,
            "{mode} case {case} schedule {schedule:?}"
        );
    }
}

/// Exactly-once delivery for the recovering modes under arbitrary failure
/// schedules.
#[test]
fn hybrid_is_exactly_once_under_random_failures() {
    exactly_once_under_random_failures(HaMode::Hybrid, 1);
}

/// Same for passive standby.
#[test]
fn passive_is_exactly_once_under_random_failures() {
    exactly_once_under_random_failures(HaMode::Passive, 2);
}

/// Active standby masks the same schedules with zero loss; duplicates never
/// leak past the dedup boundary into the accept count.
#[test]
fn active_standby_is_exactly_once() {
    exactly_once_under_random_failures(HaMode::Active, 3);
}

/// Bit-for-bit determinism: the same seed and schedule give the same run,
/// regardless of mode.
#[test]
fn runs_are_deterministic() {
    let mut rng = SimRng::seed_from(0xDE7E);
    for _case in 0..3 {
        let seed = rng.uniform_u64(0, 200);
        let schedule = [(1_200u64, 900u64, 0.97f64)];
        let a = run_schedule(HaMode::Hybrid, &schedule, 650.0, seed);
        let b = run_schedule(HaMode::Hybrid, &schedule, 650.0, seed);
        assert_eq!(a, b);
    }
}
