//! Property-based end-to-end tests: random failure schedules and parameters
//! must never break exactly-once delivery or determinism.

use hybrid_ha::prelude::*;
use proptest::prelude::*;

fn run_schedule(
    mode: HaMode,
    schedule: &[(u64, u64, f64)],
    rate: f64,
    seed: u64,
) -> (u64, u64, u64) {
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), mode)
        .source_rate(rate)
        .seed(seed)
        .build();
    for &(start_ms, len_ms, share) in schedule {
        sim.inject_spike_windows(
            MachineId(1),
            &[SpikeWindow {
                start: SimTime::from_millis(start_ms),
                end: SimTime::from_millis(start_ms + len_ms),
                share,
            }],
        );
    }
    sim.stop_sources_at(SimTime::from_secs(8));
    sim.run_for(SimDuration::from_secs(13));
    let world = sim.world();
    (
        world.sources()[0].produced(),
        world.sinks()[0].accepted(),
        world.sinks()[0].duplicates_dropped(),
    )
}

/// Strategy: up to 3 non-overlapping spikes inside the first 7 seconds.
fn schedules() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    proptest::collection::vec((500u64..2_000, 200u64..1_500, 0.5f64..1.0), 1..4).prop_map(|raw| {
        let mut t = 500;
        raw.into_iter()
            .map(|(gap, len, share)| {
                let start = t + gap;
                t = start + len;
                (start, len.min(7_000u64.saturating_sub(start).max(1)), share)
            })
            .filter(|&(start, _, _)| start < 7_000)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full end-to-end simulation
        .. ProptestConfig::default()
    })]

    /// Exactly-once delivery for the recovering modes under arbitrary
    /// failure schedules.
    #[test]
    fn hybrid_is_exactly_once_under_random_failures(
        schedule in schedules(),
        seed in 0u64..1_000,
    ) {
        let (produced, accepted, _) = run_schedule(HaMode::Hybrid, &schedule, 700.0, seed);
        prop_assert_eq!(accepted, produced, "schedule {:?}", schedule);
    }

    /// Same for passive standby.
    #[test]
    fn passive_is_exactly_once_under_random_failures(
        schedule in schedules(),
        seed in 0u64..1_000,
    ) {
        let (produced, accepted, _) = run_schedule(HaMode::Passive, &schedule, 700.0, seed);
        prop_assert_eq!(accepted, produced, "schedule {:?}", schedule);
    }

    /// Active standby masks the same schedules with zero loss; duplicates
    /// never leak past the dedup boundary into the accept count.
    #[test]
    fn active_standby_is_exactly_once(
        schedule in schedules(),
        seed in 0u64..1_000,
    ) {
        let (produced, accepted, _) = run_schedule(HaMode::Active, &schedule, 700.0, seed);
        prop_assert_eq!(accepted, produced);
    }

    /// Bit-for-bit determinism: the same seed and schedule give the same
    /// run, regardless of mode.
    #[test]
    fn runs_are_deterministic(seed in 0u64..200) {
        let schedule = [(1_200u64, 900u64, 0.97f64)];
        let a = run_schedule(HaMode::Hybrid, &schedule, 650.0, seed);
        let b = run_schedule(HaMode::Hybrid, &schedule, 650.0, seed);
        prop_assert_eq!(a, b);
    }
}
