//! Checkpoint-protocol tests: all three protocols recover correctly; the
//! sweeping protocol carries the least checkpoint traffic (§III-B).

use hybrid_ha::prelude::*;

fn run(protocol: CheckpointProtocol, with_failure: bool, seed: u64) -> (u64, u64, u64) {
    let mut sim = HaSimulation::builder(eval_chain_job())
        .mode(HaMode::None)
        .subjob_mode(SubjobId(1), HaMode::Passive)
        .source_rate(800.0)
        .seed(seed)
        .tune(|c| c.checkpoint_protocol = protocol)
        .build();
    if with_failure {
        sim.inject_spike_windows(
            MachineId(1),
            &single_failure(SimTime::from_secs(3), SimDuration::from_secs(3)),
        );
    }
    sim.stop_sources_at(SimTime::from_secs(8));
    sim.run_for(SimDuration::from_secs(12));
    let produced = sim.world().sources()[0].produced();
    let accepted = sim.world().sinks()[0].accepted();
    let ckpt_elements = sim.world().counters().elements(MsgClass::Checkpoint);
    (produced, accepted, ckpt_elements)
}

#[test]
fn all_protocols_recover_losslessly() {
    for protocol in [
        CheckpointProtocol::Sweeping,
        CheckpointProtocol::Synchronous,
        CheckpointProtocol::Individual,
    ] {
        let (produced, accepted, ckpt) = run(protocol, true, 11);
        assert_eq!(accepted, produced, "{protocol} lost elements");
        assert!(ckpt > 0, "{protocol} checkpointed nothing");
    }
}

#[test]
fn sweeping_has_least_checkpoint_traffic() {
    let (_, _, sweeping) = run(CheckpointProtocol::Sweeping, false, 12);
    let (_, _, sync) = run(CheckpointProtocol::Synchronous, false, 12);
    let (_, _, individual) = run(CheckpointProtocol::Individual, false, 12);
    assert!(
        (sweeping as f64) < 0.6 * sync as f64,
        "sweeping {sweeping} vs synchronous {sync}"
    );
    assert!(
        (sweeping as f64) < 0.6 * individual as f64,
        "sweeping {sweeping} vs individual {individual}"
    );
}

#[test]
fn checkpoint_interval_bounds_retransmission() {
    // A shorter interval means fresher standby state, so less data to
    // retransmit/reprocess on switch-over.
    let retrans = |ckpt_ms: u64| {
        let mut sim = HaSimulation::builder(eval_chain_job())
            .mode(HaMode::None)
            .subjob_mode(SubjobId(1), HaMode::Hybrid)
            .source_rate(800.0)
            .seed(13)
            .log_sink_accepts(true)
            .tune(|c| c.checkpoint_interval = SimDuration::from_millis(ckpt_ms))
            .build();
        let failure_at = SimTime::from_secs(3);
        sim.inject_spike_windows(
            MachineId(1),
            &single_failure(failure_at, SimDuration::from_secs(4)),
        );
        sim.run_for(SimDuration::from_secs(9));
        sim.recovery_timeline(SubjobId(1), failure_at)
            .expect("recovered")
            .retrans_reprocess_ms()
    };
    let short = retrans(100);
    let long = retrans(2_000);
    assert!(
        long > short,
        "longer checkpoint interval retransmits more: {short} vs {long}"
    );
}

#[test]
fn checkpoints_stop_when_mode_does_not_need_them() {
    for mode in [HaMode::None, HaMode::Active] {
        let mut sim = HaSimulation::builder(eval_chain_job())
            .mode(mode)
            .source_rate(500.0)
            .seed(14)
            .build();
        sim.run_for(SimDuration::from_secs(3));
        assert_eq!(
            sim.world().counters().elements(MsgClass::Checkpoint),
            0,
            "{mode} must not checkpoint"
        );
    }
}

#[test]
fn checkpoint_traffic_scales_with_pe_count() {
    // Fig 11's mechanism: each PE contributes its own checkpoint stream.
    let ckpt_elements = |pes_per_subjob: usize| {
        let job = Job::chain(
            "scale",
            &OperatorSpec::Synthetic {
                selectivity: 1.0,
                demand_secs: 4e-5,
                state_elements: 20,
            },
            2 * pes_per_subjob,
            2,
        );
        let mut sim = HaSimulation::builder(job)
            .mode(HaMode::Passive)
            .source_rate(800.0)
            .seed(15)
            .build();
        sim.run_for(SimDuration::from_secs(5));
        sim.world().counters().elements(MsgClass::Checkpoint)
    };
    let small = ckpt_elements(1);
    let large = ckpt_elements(4);
    assert!(
        large as f64 > 2.5 * small as f64,
        "4x the PEs should give roughly 4x checkpoint traffic: {small} vs {large}"
    );
}
