//! # hybrid-ha — hybrid high availability for distributed stream processing
//!
//! A complete Rust implementation and experimental reproduction of
//! **Zhang, Gu, Ye, Yang, Kim, Lei, Liu — "A Hybrid Approach to High
//! Availability in Stream Processing Systems" (ICDCS 2010)**.
//!
//! The paper studies *transient unavailability* — short (seconds), frequent
//! (every tens of seconds) episodes where a shared machine is effectively
//! too overloaded to process its stream — and proposes a **hybrid standby**
//! design: run passive standby (checkpoints to a suspended, pre-deployed
//! secondary with early-created inactive connections) during normal
//! operation, switch the secondary to active operation on the *first*
//! heartbeat miss, and roll back (reading state from the secondary) as soon
//! as the primary responds again. The result is roughly passive-standby
//! cost with near-active-standby recovery.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `sps-sim` | deterministic discrete-event kernel |
//! | [`cluster`] | `sps-cluster` | machines (processor sharing, load spikes, jitter, wake-up latency), LAN |
//! | [`engine`] | `sps-engine` | elements, operators, retaining/deduplicating queues, PEs, jobs |
//! | [`metrics`] | `sps-metrics` | stats, CDFs, message counters, recovery decomposition |
//! | [`trace`] | `sps-trace` | typed sim-time event bus, flight recorder, telemetry series |
//! | [`ha`] | `sps-ha` | **the paper's contribution**: NONE/AS/PS/Hybrid, sweeping checkpointing, detectors, switch-over/rollback/promotion |
//! | [`workloads`] | `sps-workloads` | evaluation job, example pipelines, failure loads, cluster study |
//!
//! ## Quickstart
//!
//! ```
//! use hybrid_ha::prelude::*;
//!
//! // The paper's evaluation job: 8 PEs in a chain, 4 subjobs of 2 PEs.
//! let job = Job::chain("eval", &OperatorSpec::synthetic_default(), 8, 4);
//! let mut sim = HaSimulation::builder(job)
//!     .mode(HaMode::Hybrid)
//!     .source_rate(1_000.0)
//!     .seed(42)
//!     .build();
//!
//! // A 3-second transient failure on subjob 1's primary machine.
//! sim.inject_spike_windows(MachineId(1), &[SpikeWindow {
//!     start: SimTime::from_secs(2),
//!     end: SimTime::from_secs(5),
//!     share: 1.0,
//! }]);
//! // Stop the feed, then let in-flight elements drain.
//! sim.stop_sources_at(SimTime::from_secs(8));
//! sim.run_for(SimDuration::from_secs(10));
//!
//! let report = sim.report();
//! assert_eq!(report.sink_accepted, sim.world().sources()[0].produced());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses that regenerate every figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sps_cluster as cluster;
pub use sps_engine as engine;
pub use sps_ha as ha;
pub use sps_metrics as metrics;
pub use sps_sim as sim;
pub use sps_trace as trace;
pub use sps_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use sps_cluster::{
        Dist, JitterProfile, LoadComponent, MachineId, NetworkConfig, SpikeProfile, SpikeWindow,
    };
    pub use sps_engine::{
        AggKind, Job, JobBuilder, Operator, OperatorFactory, OperatorSpec, PeId, Replica, SinkId,
        SourceId, SubjobId,
    };
    pub use sps_ha::{
        BenchmarkConfig, CheckpointProtocol, HaConfig, HaEventKind, HaMode, HaSimulation,
        PayloadGen, Placement, RateProfile, RunReport,
    };
    pub use sps_metrics::{Cdf, MsgClass, OnlineStats, RecoveryKind, Table};
    pub use sps_sim::{SimDuration, SimRng, SimTime};
    pub use sps_trace::{
        FlightRecorder, RecoveryPhase, RecoverySpan, SharedRecorder, Telemetry, TraceEvent,
        TraceRecord, TraceSink,
    };
    pub use sps_workloads::{
        eval_chain_job, failure_load, financial_job, marginal_spike_share, multiplexed_placement,
        single_failure, traffic_job, tree_job,
    };
}
