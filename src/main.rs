//! `hybrid-ha` — a command-line scenario runner for the stream-processing
//! HA simulator.
//!
//! ```text
//! hybrid-ha run     [--job chain|financial|traffic|tree] [--mode none|as|ps|hybrid]
//!                   [--rate N] [--secs N] [--seed N] [--fail START:LEN ...]
//! hybrid-ha compare [--job ...] [--rate N] [--secs N] [--seed N] [--fail START:LEN ...]
//! hybrid-ha study   [--hours N] [--seed N]
//! ```

use hybrid_ha::prelude::*;
use hybrid_ha::workloads::{ClusterStudy, ClusterStudyConfig};

/// A parsed failure window (`start:len`, seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
struct FailSpec {
    start_s: f64,
    len_s: f64,
}

#[derive(Debug, Clone)]
struct RunArgs {
    job: String,
    mode: HaMode,
    rate: f64,
    secs: u64,
    seed: u64,
    failures: Vec<FailSpec>,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            job: "chain".into(),
            mode: HaMode::Hybrid,
            rate: 1_000.0,
            secs: 10,
            seed: 42,
            failures: vec![FailSpec {
                start_s: 2.0,
                len_s: 3.0,
            }],
        }
    }
}

fn parse_mode(s: &str) -> Result<HaMode, String> {
    match s.to_ascii_lowercase().as_str() {
        "none" => Ok(HaMode::None),
        "as" | "active" => Ok(HaMode::Active),
        "ps" | "passive" => Ok(HaMode::Passive),
        "hybrid" => Ok(HaMode::Hybrid),
        other => Err(format!("unknown mode '{other}' (none|as|ps|hybrid)")),
    }
}

fn parse_fail(s: &str) -> Result<FailSpec, String> {
    let (a, b) = s
        .split_once(':')
        .ok_or_else(|| format!("failure spec '{s}' must be START:LEN (seconds)"))?;
    let start_s: f64 = a.parse().map_err(|_| format!("bad start '{a}'"))?;
    let len_s: f64 = b.parse().map_err(|_| format!("bad length '{b}'"))?;
    if start_s < 0.0 || len_s <= 0.0 {
        return Err(format!(
            "failure spec '{s}' must be non-negative with positive length"
        ));
    }
    Ok(FailSpec { start_s, len_s })
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs::default();
    out.failures.clear();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--job" => out.job = value("--job")?,
            "--mode" => out.mode = parse_mode(&value("--mode")?)?,
            "--rate" => {
                out.rate = value("--rate")?
                    .parse()
                    .map_err(|_| "bad --rate".to_string())?
            }
            "--secs" => {
                out.secs = value("--secs")?
                    .parse()
                    .map_err(|_| "bad --secs".to_string())?
            }
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--fail" => out.failures.push(parse_fail(&value("--fail")?)?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if out.failures.is_empty() {
        out.failures = RunArgs::default().failures;
    }
    Ok(out)
}

fn build_job(name: &str) -> Result<Job, String> {
    match name {
        "chain" => Ok(eval_chain_job()),
        "financial" => Ok(financial_job(16)),
        "traffic" => Ok(traffic_job(8)),
        "tree" => Ok(tree_job()),
        other => Err(format!(
            "unknown job '{other}' (chain|financial|traffic|tree)"
        )),
    }
}

fn run_one(args: &RunArgs) -> Result<(RunReport, Vec<String>, u64), String> {
    let job = build_job(&args.job)?;
    let protected = SubjobId(if job.subjob_count() > 1 { 1 } else { 0 });
    let mut sim = HaSimulation::builder(job)
        .mode(HaMode::None)
        .subjob_mode(protected, args.mode)
        .source_rate(args.rate)
        .seed(args.seed)
        .build();
    let machine = MachineId(protected.0);
    for f in &args.failures {
        sim.inject_spike_windows(
            machine,
            &[SpikeWindow {
                start: SimTime::from_nanos((f.start_s * 1e9) as u64),
                end: SimTime::from_nanos(((f.start_s + f.len_s) * 1e9) as u64),
                share: 1.0,
            }],
        );
    }
    sim.stop_sources_at(SimTime::from_secs(args.secs));
    sim.run_for(SimDuration::from_secs(args.secs + 4));
    let events = sim
        .world()
        .ha_events()
        .iter()
        .map(|e| format!("{:>8.3}s  {:?}  ({})", e.at.as_secs_f64(), e.kind, e.subjob))
        .collect();
    let produced = sim.world().sources().iter().map(|s| s.produced()).sum();
    Ok((sim.report(), events, produced))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let args = parse_run_args(args)?;
    println!(
        "job={} mode={} rate={} el/s failures={:?} seed={}",
        args.job, args.mode, args.rate, args.failures, args.seed
    );
    let (report, events, produced) = run_one(&args)?;
    if events.is_empty() {
        println!("no HA events");
    } else {
        for e in &events {
            println!("{e}");
        }
    }
    println!();
    println!("produced           : {produced}");
    println!("delivered          : {}", report.sink_accepted);
    println!("duplicates dropped : {}", report.sink_duplicates);
    println!("mean E2E delay     : {:.2} ms", report.sink_mean_delay_ms);
    println!("p99 E2E delay      : {:.2} ms", report.sink_p99_delay_ms);
    println!("traffic (elements) : {}", report.total_overhead_elements());
    if report.sink_accepted == produced {
        println!("delivery           : exactly-once ✓");
    } else {
        println!(
            "delivery           : {} of {} (in-flight at horizon)",
            report.sink_accepted, produced
        );
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let base = parse_run_args(args)?;
    let mut table = Table::new(vec![
        "mode",
        "mean_ms",
        "p99_ms",
        "delivered",
        "traffic_elements",
    ]);
    for mode in HaMode::ALL {
        let (report, _, _) = run_one(&RunArgs {
            mode,
            ..base.clone()
        })?;
        table.row(vec![
            mode.to_string(),
            format!("{:.2}", report.sink_mean_delay_ms),
            format!("{:.2}", report.sink_p99_delay_ms),
            report.sink_accepted.to_string(),
            report.total_overhead_elements().to_string(),
        ]);
    }
    print!("{table}");
    Ok(())
}

fn cmd_study(args: &[String]) -> Result<(), String> {
    let mut hours = 1u64;
    let mut seed = 2010u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--hours" => hours = value.parse().map_err(|_| "bad --hours".to_string())?,
            "--seed" => seed = value.parse().map_err(|_| "bad --seed".to_string())?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let config = ClusterStudyConfig {
        duration: SimDuration::from_secs(hours * 3600),
        ..ClusterStudyConfig::default()
    };
    let mut rng = SimRng::seed_from(seed);
    let study = ClusterStudy::run(&config, &mut rng);
    let mut inter = study.inter_failure_cdf();
    let mut dur = study.duration_cdf();
    println!(
        "{} machines, {} h: {} exhibited transient unavailability",
        study.machines.len(),
        hours,
        study.machines_with_spikes()
    );
    println!(
        "spiking ≥ once/60 s: {:.0}%   spike < 10 s: {:.0}%   spike > 20 s: {:.0}%",
        inter.fraction_at_most(60.0) * 100.0,
        dur.fraction_at_most(10.0) * 100.0,
        (1.0 - dur.fraction_at_most(20.0)) * 100.0
    );
    Ok(())
}

const USAGE: &str = "\
hybrid-ha — stream-processing HA simulator (Zhang et al., ICDCS 2010)

USAGE:
  hybrid-ha run     [--job chain|financial|traffic|tree] [--mode none|as|ps|hybrid]
                    [--rate N] [--secs N] [--seed N] [--fail START:LEN]...
  hybrid-ha compare [same flags; runs all four modes]
  hybrid-ha study   [--hours N] [--seed N]

EXAMPLES:
  hybrid-ha run --mode hybrid --fail 2:3 --secs 10
  hybrid-ha compare --job financial --rate 2000 --fail 3:4
  hybrid-ha study --hours 2
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "run" => cmd_run(rest),
            "compare" => cmd_compare(rest),
            "study" => cmd_study(rest),
            "help" | "--help" | "-h" => {
                print!("{USAGE}");
                Ok(())
            }
            other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
        },
        None => {
            print!("{USAGE}");
            Ok(())
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_modes() {
        assert_eq!(parse_mode("hybrid").unwrap(), HaMode::Hybrid);
        assert_eq!(parse_mode("AS").unwrap(), HaMode::Active);
        assert_eq!(parse_mode("ps").unwrap(), HaMode::Passive);
        assert!(parse_mode("bogus").is_err());
    }

    #[test]
    fn parses_fail_spec() {
        assert_eq!(
            parse_fail("2.5:3").unwrap(),
            FailSpec {
                start_s: 2.5,
                len_s: 3.0
            }
        );
        assert!(parse_fail("nope").is_err());
        assert!(parse_fail("2:-1").is_err());
    }

    #[test]
    fn parses_full_run_args() {
        let a = parse_run_args(&s(&[
            "--job", "tree", "--mode", "ps", "--rate", "500", "--secs", "7", "--seed", "9",
            "--fail", "1:2", "--fail", "4:1",
        ]))
        .unwrap();
        assert_eq!(a.job, "tree");
        assert_eq!(a.mode, HaMode::Passive);
        assert_eq!(a.rate, 500.0);
        assert_eq!(a.secs, 7);
        assert_eq!(a.seed, 9);
        assert_eq!(a.failures.len(), 2);
    }

    #[test]
    fn default_failure_applies_when_none_given() {
        let a = parse_run_args(&s(&["--mode", "hybrid"])).unwrap();
        assert_eq!(a.failures.len(), 1);
    }

    #[test]
    fn rejects_unknown_flags_and_jobs() {
        assert!(parse_run_args(&s(&["--bogus", "1"])).is_err());
        assert!(build_job("nope").is_err());
        for j in ["chain", "financial", "traffic", "tree"] {
            assert!(build_job(j).is_ok());
        }
    }

    #[test]
    fn end_to_end_run_is_lossless() {
        let (report, events, produced) = run_one(&RunArgs {
            rate: 500.0,
            secs: 6,
            ..RunArgs::default()
        })
        .unwrap();
        assert_eq!(report.sink_accepted, produced);
        assert!(!events.is_empty(), "the default failure produced HA events");
    }
}
